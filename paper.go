package mbavf

import (
	"strings"

	"mbavf/internal/experiments"
)

// Experiments lists the reproducible paper artifacts (table1, fig2, fig4,
// fig5, fig6, table2, fig8, fig9, fig10, table3, fig11).
func Experiments() []string { return experiments.Names() }

// ExperimentOptions tunes RunExperiment.
type ExperimentOptions struct {
	// Workloads restricts the benchmark set (nil = the paper set).
	Workloads []string
	// Injections sizes the Table II single-bit campaigns.
	Injections int
	// Windows is the number of time windows in the over-time figures.
	Windows int
	// Seed drives injection sampling.
	Seed int64
	// Workers is the injection worker-pool size (0 = all CPUs); any
	// value produces identical results.
	Workers int
	// AVFWindows is the number of time windows for the avft experiment's
	// time-resolved AVF series (0 = the Windows default).
	AVFWindows int
}

func (o ExperimentOptions) internal() experiments.Options {
	io := experiments.DefaultOptions()
	if len(o.Workloads) > 0 {
		io.Workloads = o.Workloads
	}
	if o.Injections > 0 {
		io.Injections = o.Injections
	}
	if o.Windows > 0 {
		io.Windows = o.Windows
	}
	if o.Seed != 0 {
		io.Seed = o.Seed
	}
	if o.Workers > 0 {
		io.Workers = o.Workers
	}
	if o.AVFWindows > 0 {
		io.AVFWindows = o.AVFWindows
	}
	return io
}

// RunExperiment regenerates one of the paper's tables or figures and
// returns its rendered text.
func RunExperiment(name string, opts ExperimentOptions) (string, error) {
	e, err := experiments.ByName(name)
	if err != nil {
		return "", err
	}
	tables, err := e.Run(opts.internal())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range tables {
		t.Render(&b)
	}
	return b.String(), nil
}
