package mbavf

import (
	"context"
	"fmt"
	"strings"

	"mbavf/internal/experiments"
	"mbavf/internal/policy"
)

// Experiments lists the reproducible paper artifacts (table1, fig2, fig4,
// fig5, fig6, table2, fig8, fig9, fig10, table3, fig11).
func Experiments() []string { return experiments.Names() }

// ExperimentOptions tunes RunExperiment.
type ExperimentOptions struct {
	// Workloads restricts the benchmark set (nil = the paper set).
	Workloads []string
	// Injections sizes the Table II single-bit campaigns.
	Injections int
	// Windows is the number of time windows in the over-time figures.
	Windows int
	// Seed drives injection sampling.
	Seed int64
	// Workers is the injection worker-pool size (0 = all CPUs); any
	// value produces identical results.
	Workers int
	// AVFWindows is the number of time windows for the avft experiment's
	// time-resolved AVF series (0 = the Windows default).
	AVFWindows int
	// StoreDir, when non-empty, points experiments at a persistent
	// run-artifact store: instrumented runs load from it instead of
	// simulating when recorded, and are recorded after simulating
	// otherwise.
	StoreDir string
	// FabricWorkers, when non-empty, distributes injection campaigns
	// across these fabric worker base URLs (results stay bit-identical
	// to in-process runs).
	FabricWorkers []string
	// Policies restricts the protection policies the policies experiment
	// evaluates (nil = every built-in policy; see Policies()). Unknown
	// names are rejected with ErrBadOption.
	Policies []string
	// ScrubInterval is the scrub period, in cycles, of the scrubbing
	// policies (0 = the built-in default; negative values are rejected
	// with ErrBadOption).
	ScrubInterval int64
}

// internal validates the options and translates them to the experiment
// registry's form. Zero values select defaults; negative values are
// rejected with an error wrapping ErrBadOption (they used to be silently
// replaced, which hid caller bugs and made remote queries undebuggable).
func (o ExperimentOptions) internal() (experiments.Options, error) {
	io := experiments.DefaultOptions()
	for _, f := range []struct {
		name string
		v    int
		dst  *int
	}{
		{"Injections", o.Injections, &io.Injections},
		{"Windows", o.Windows, &io.Windows},
		{"Workers", o.Workers, &io.Workers},
		{"AVFWindows", o.AVFWindows, &io.AVFWindows},
	} {
		if f.v < 0 {
			return experiments.Options{}, fmt.Errorf("%w: %s must not be negative (got %d)", ErrBadOption, f.name, f.v)
		}
		if f.v > 0 {
			*f.dst = f.v
		}
	}
	if len(o.Workloads) > 0 {
		io.Workloads = o.Workloads
	}
	if o.Seed != 0 {
		io.Seed = o.Seed
	}
	if o.ScrubInterval < 0 {
		return experiments.Options{}, fmt.Errorf("%w: ScrubInterval must not be negative (got %d)", ErrBadOption, o.ScrubInterval)
	}
	for _, name := range o.Policies {
		if !policy.Known(name) {
			return experiments.Options{}, fmt.Errorf("%w: unknown policy %q (have %v)", ErrBadOption, name, Policies())
		}
	}
	if len(o.Policies) > 0 {
		io.Policies = o.Policies
	}
	if o.ScrubInterval > 0 {
		io.ScrubInterval = o.ScrubInterval
	}
	io.StoreDir = o.StoreDir
	io.FabricWorkers = o.FabricWorkers
	return io, nil
}

// Validate checks the options without running anything, reporting any
// invalid field with an error wrapping ErrBadOption — the pre-flight
// check serving layers use before queueing an experiment job.
func (o ExperimentOptions) Validate() error {
	_, err := o.internal()
	return err
}

// RunExperiment regenerates one of the paper's tables or figures and
// returns its rendered text. Invalid options are reported with an error
// wrapping ErrBadOption.
func RunExperiment(name string, opts ExperimentOptions) (string, error) {
	return RunExperimentContext(context.Background(), name, opts)
}

// RunExperimentContext is RunExperiment under a context: cancelling ctx
// aborts the experiment's simulations and injection campaigns and returns
// the context's error — the entry point the analysis service's experiment
// jobs run through.
func RunExperimentContext(ctx context.Context, name string, opts ExperimentOptions) (string, error) {
	e, err := experiments.ByName(name)
	if err != nil {
		return "", err
	}
	io, err := opts.internal()
	if err != nil {
		return "", err
	}
	io.Context = ctx
	tables, err := e.Run(io)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range tables {
		t.Render(&b)
	}
	return b.String(), nil
}
