package mbavf

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mbavf/internal/obs"
	"mbavf/internal/sim"
	"mbavf/internal/store"
)

// ErrNotInStore marks a RunStore lookup for a workload whose artifact
// has not been recorded; callers fall back to simulation.
var ErrNotInStore = store.ErrNotFound

// obsStoreFallbacks counts store loads that failed (missing or corrupt
// artifact) and fell back to a fresh simulation.
var obsStoreFallbacks = obs.NewCounter("store.fallback_simulations")

// RunStore is a persistent, content-addressed collection of run
// artifacts: the "record once, analyze forever" tier. Each artifact is
// keyed by a stable hash of the workload and the machine configuration,
// so analyses served from the store are exactly the analyses a fresh
// simulation would produce — for the price of a millisecond-scale
// decode instead of a full simulation. Multiple processes may share one
// store directory; writes are atomic and damaged artifacts quarantine
// themselves on first read.
type RunStore struct {
	st *store.Store
}

// OpenRunStore opens (creating if needed) a run-artifact store rooted at
// dir.
func OpenRunStore(dir string) (*RunStore, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &RunStore{st: st}, nil
}

// Dir returns the store's root directory.
func (rs *RunStore) Dir() string { return rs.st.Dir() }

// Key returns the content address of the named workload's artifact
// under the default machine configuration (the one RunWorkload uses).
func (rs *RunStore) Key(workload string) string {
	return store.KeyFor(workload, sim.DefaultConfig())
}

// Has reports whether the workload's artifact is recorded.
func (rs *RunStore) Has(workload string) bool { return rs.st.Has(rs.Key(workload)) }

// Load revives the named workload's recorded Run. A missing artifact
// returns ErrNotInStore; a damaged one (any CRC mismatch) is
// quarantined and returns a typed decode error. Either way the caller's
// fallback is RunWorkload.
//
// Loading is lazy: the artifact's framing and checksums are fully
// verified here, but each section's measurement payload decodes on the
// first analysis that touches it — reviving a run costs milliseconds
// regardless of artifact size, and an L1 query never pays to decode the
// L2 timeline.
func (rs *RunStore) Load(workload string) (*Run, error) {
	a, err := rs.st.GetArtifact(rs.Key(workload))
	if err != nil {
		return nil, err
	}
	meta := a.Meta()
	if meta.Workload != workload {
		// A key collision is cryptographically impossible; a mismatch
		// means the file was planted or renamed. Do not analyze it.
		return nil, fmt.Errorf("mbavf: store artifact names workload %q, wanted %q", meta.Workload, workload)
	}
	return &Run{m: metaMeasurements(meta), art: a}, nil
}

// metaMeasurements seeds a lazily backed run's measurements with the
// artifact's metadata; the trackers and graph stay nil and decode from
// the artifact on demand.
func metaMeasurements(meta store.Meta) *sim.Measurements {
	return &sim.Measurements{
		Workload:     meta.Workload,
		ConfigFP:     meta.ConfigFP,
		Cycles:       meta.Cycles,
		Instructions: meta.Instructions,
		L1Sets:       meta.L1Sets,
		L1Ways:       meta.L1Ways,
		L2Sets:       meta.L2Sets,
		L2Ways:       meta.L2Ways,
		LineBytes:    meta.LineBytes,
		VGPRThreads:  meta.VGPRThreads,
		VGPRRegs:     meta.VGPRRegs,
	}
}

// Preload forces the deferred decoding of a store-loaded run for the
// named structures (every structure when none are given), so subsequent
// queries pay analysis cost only. Simulated runs are always fully
// materialized, making Preload a no-op for them. Servers call it to
// move artifact decoding off the query path; benchmarks call it to
// charge the store's full cost to the acquisition phase.
func (r *Run) Preload(sts ...Structure) error {
	if r.art == nil {
		return nil
	}
	if len(sts) == 0 {
		sts = Structures()
	}
	if _, err := r.graph(); err != nil {
		return err
	}
	for _, st := range sts {
		if _, err := r.tracker(st); err != nil {
			return err
		}
	}
	return nil
}

// Save records the run as the named workload's artifact, atomically
// replacing any previous recording.
func (rs *RunStore) Save(workload string, r *Run) error {
	m, err := r.measurements()
	if err != nil {
		return err
	}
	return rs.st.Put(rs.Key(workload), m)
}

// storeRetryDelay is the backoff before the single Load retry on a
// transient store failure; a var so tests don't wait.
var storeRetryDelay = 50 * time.Millisecond

// RunWorkloadStored returns the named workload's Run from the store when
// a valid artifact is recorded, and simulates (then records) otherwise.
// The boolean reports whether the store answered. A nil store always
// simulates; a store that cannot be written (read-only disk, quota)
// still returns the simulated run — persistence is an accelerator,
// never a correctness dependency.
//
// Load failures split by kind. A damaged artifact (ErrCorrupt /
// ErrFormat) is already quarantined by the store, so the fallback
// simulation re-records a good replacement. A transient failure (EMFILE,
// NFS hiccup, permission flap) gets one retried Load after a short
// backoff, and if that also fails the fallback simulation does NOT
// overwrite the artifact — the recording on disk may be perfectly good,
// and clobbering it mid-flap would throw away an expensive, valid run.
func RunWorkloadStored(ctx context.Context, name string, rs *RunStore) (*Run, bool, error) {
	if rs == nil {
		r, err := RunWorkloadContext(ctx, name)
		return r, false, err
	}
	record := true
	r, err := rs.Load(name)
	switch {
	case err == nil:
		return r, true, nil
	case errors.Is(err, ErrNotInStore):
		// Nothing recorded yet: simulate and record.
	case errors.Is(err, store.ErrCorrupt), errors.Is(err, store.ErrFormat):
		// Damaged and quarantined: simulate and re-record a good artifact.
		obsStoreFallbacks.Add(1)
	default:
		// Transient: retry once with backoff before giving up on the
		// store for this call.
		select {
		case <-time.After(storeRetryDelay):
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if r, err = rs.Load(name); err == nil {
			return r, true, nil
		}
		obsStoreFallbacks.Add(1)
		record = false
	}
	r, err = RunWorkloadContext(ctx, name)
	if err != nil {
		return nil, false, err
	}
	if record {
		_ = rs.Save(name, r) // best-effort; failure to persist must not fail the run
	}
	return r, false, nil
}
