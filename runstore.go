package mbavf

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mbavf/internal/obs"
	"mbavf/internal/sim"
	"mbavf/internal/store"
	"mbavf/internal/store/disk"
)

// ErrNotInStore marks a RunStore lookup for a workload whose artifact
// has not been recorded; callers fall back to simulation.
var ErrNotInStore = store.ErrNotFound

// obsStoreFallbacks counts store loads that failed (missing or corrupt
// artifact) and fell back to a fresh simulation.
var obsStoreFallbacks = obs.NewCounter("store.fallback_simulations")

// RunStore is a persistent, content-addressed collection of run
// artifacts: the "record once, analyze forever" tier. Each artifact is
// keyed by a stable hash of the workload and the machine configuration,
// so analyses served from the store are exactly the analyses a fresh
// simulation would produce — for the price of a millisecond-scale
// decode instead of a full simulation.
//
// The storage itself is pluggable: NewRunStore accepts any
// store.Backend — a local directory (internal/store/disk), the HTTP
// artifact server of another mbavf-serve process
// (internal/store/httpstore, so one recorded artifact warms a whole
// fleet), or an in-memory map for tests (internal/store/mem). Multiple
// processes may share one backend; writes are atomic and damaged
// artifacts quarantine themselves on first read.
type RunStore struct {
	st *store.Store
}

// NewRunStore builds a run store over any artifact-store backend.
func NewRunStore(b store.Backend) *RunStore {
	return &RunStore{st: store.NewStore(b)}
}

// OpenRunStore opens (creating if needed) a run-artifact store rooted at
// dir.
//
// Deprecated: OpenRunStore is the pre-backend spelling, kept as a thin
// bit-identical wrapper over NewRunStore with a disk backend so
// existing callers compile unchanged. New code should construct the
// backend explicitly: NewRunStore(disk.New(dir)).
func OpenRunStore(dir string) (*RunStore, error) {
	b, err := disk.New(dir)
	if err != nil {
		return nil, err
	}
	return NewRunStore(b), nil
}

// Dir describes the store's backing location: the root directory of a
// disk store, the base URL of an HTTP store.
func (rs *RunStore) Dir() string { return rs.st.Dir() }

// Backend returns the blob layer this store runs over, so a server can
// mount it behind the HTTP artifact protocol.
func (rs *RunStore) Backend() store.Backend { return rs.st.Backend() }

// Maintain runs the store's background hygiene loop — periodic CRC
// scrubs and size-bounding GC — until ctx is cancelled. It blocks;
// callers run it in a goroutine.
func (rs *RunStore) Maintain(ctx context.Context, cfg store.MaintainConfig) {
	rs.st.Maintain(ctx, cfg)
}

// Key returns the content address of the named workload's artifact
// under the default machine configuration (the one RunWorkload uses).
func (rs *RunStore) Key(workload string) string {
	return store.KeyFor(workload, sim.DefaultConfig())
}

// Has reports whether the workload's artifact is recorded.
func (rs *RunStore) Has(workload string) bool {
	return rs.st.Has(context.Background(), rs.Key(workload))
}

// Load revives the named workload's recorded Run. A missing artifact
// returns ErrNotInStore; a damaged one (any CRC mismatch) is
// quarantined and returns a typed decode error. Either way the caller's
// fallback is RunWorkload.
//
// Loading is lazy: over a local backend the artifact's framing and
// checksums are fully verified here, while each section's measurement
// payload decodes on the first analysis that touches it; over a ranged
// backend (HTTP) even the payload bytes transfer on first touch —
// reviving a run costs milliseconds regardless of artifact size, and an
// L1 query never pays to decode (or download) the L2 timeline.
func (rs *RunStore) Load(workload string) (*Run, error) {
	return rs.LoadContext(context.Background(), workload)
}

// LoadContext is Load under a context, which bounds the backend I/O
// (a remote store may be slow or gone).
func (rs *RunStore) LoadContext(ctx context.Context, workload string) (*Run, error) {
	a, err := rs.st.GetArtifact(ctx, rs.Key(workload))
	if err != nil {
		return nil, err
	}
	meta := a.Meta()
	if meta.Workload != workload {
		// A key collision is cryptographically impossible; a mismatch
		// means the file was planted or renamed. Do not analyze it.
		return nil, fmt.Errorf("mbavf: store artifact names workload %q, wanted %q", meta.Workload, workload)
	}
	return &Run{m: metaMeasurements(meta), art: a}, nil
}

// metaMeasurements seeds a lazily backed run's measurements with the
// artifact's metadata; the trackers and graph stay nil and decode from
// the artifact on demand.
func metaMeasurements(meta store.Meta) *sim.Measurements {
	return &sim.Measurements{
		Workload:     meta.Workload,
		ConfigFP:     meta.ConfigFP,
		Cycles:       meta.Cycles,
		Instructions: meta.Instructions,
		L1Sets:       meta.L1Sets,
		L1Ways:       meta.L1Ways,
		L2Sets:       meta.L2Sets,
		L2Ways:       meta.L2Ways,
		LineBytes:    meta.LineBytes,
		VGPRThreads:  meta.VGPRThreads,
		VGPRRegs:     meta.VGPRRegs,
	}
}

// Preload forces the deferred decoding of a store-loaded run for the
// named structures (every structure when none are given), so subsequent
// queries pay analysis cost only. Simulated runs are always fully
// materialized, making Preload a no-op for them. Servers call it to
// move artifact decoding off the query path; benchmarks call it to
// charge the store's full cost to the acquisition phase.
func (r *Run) Preload(sts ...Structure) error {
	if r.art == nil {
		return nil
	}
	if len(sts) == 0 {
		sts = Structures()
	}
	if _, err := r.graph(); err != nil {
		return err
	}
	for _, st := range sts {
		if _, err := r.tracker(st); err != nil {
			return err
		}
	}
	return nil
}

// Save records the run as the named workload's artifact, atomically
// replacing any previous recording.
func (rs *RunStore) Save(workload string, r *Run) error {
	return rs.SaveContext(context.Background(), workload, r)
}

// SaveContext is Save under a context bounding the backend I/O.
func (rs *RunStore) SaveContext(ctx context.Context, workload string, r *Run) error {
	m, err := r.measurements()
	if err != nil {
		return err
	}
	return rs.st.Put(ctx, rs.Key(workload), m)
}

// storeRetryDelay is the backoff before the single Load retry on a
// transient store failure; a var so tests don't wait.
var storeRetryDelay = 50 * time.Millisecond

// loadPreloaded is LoadContext plus an eager Preload of the structures
// the caller is about to analyze. The preload matters on a ranged
// (HTTP) backend: section payloads transfer and CRC-check on first
// touch, so forcing the touch here surfaces remote damage while the
// caller can still fall back to simulation and re-record.
func (rs *RunStore) loadPreloaded(ctx context.Context, workload string, sts []Structure) (*Run, error) {
	r, err := rs.LoadContext(ctx, workload)
	if err != nil {
		return nil, err
	}
	if len(sts) > 0 {
		if err := r.Preload(sts...); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// RunWorkloadStored returns the named workload's Run from the store when
// a valid artifact is recorded, and simulates (then records) otherwise.
// The boolean reports whether the store answered. A nil store always
// simulates; a store that cannot be written (read-only disk, quota)
// still returns the simulated run — persistence is an accelerator,
// never a correctness dependency.
//
// Load failures split by kind. A damaged artifact (ErrCorrupt /
// ErrFormat) is already quarantined by the store, so the fallback
// simulation re-records a good replacement. A transient failure (EMFILE,
// NFS hiccup, an unreachable artifact server) gets one retried Load
// after a short backoff, and if that also fails the fallback simulation
// does NOT overwrite the artifact — the recording in the store may be
// perfectly good, and clobbering it mid-flap would throw away an
// expensive, valid run.
func RunWorkloadStored(ctx context.Context, name string, rs *RunStore) (*Run, bool, error) {
	return RunWorkloadStoredFor(ctx, name, rs)
}

// RunWorkloadStoredFor is RunWorkloadStored with the structures the
// caller is about to analyze: a store-served Run arrives with those
// structures preloaded, so a remote section that turns out damaged (or
// a server that vanishes mid-download) is discovered here — where the
// fallback-to-simulation machinery can still handle it — instead of
// mid-analysis.
func RunWorkloadStoredFor(ctx context.Context, name string, rs *RunStore, sts ...Structure) (*Run, bool, error) {
	if rs == nil {
		r, err := RunWorkloadContext(ctx, name)
		return r, false, err
	}
	record := true
	r, err := rs.loadPreloaded(ctx, name, sts)
	switch {
	case err == nil:
		return r, true, nil
	case errors.Is(err, ErrNotInStore):
		// Nothing recorded yet: simulate and record.
	case errors.Is(err, store.ErrCorrupt), errors.Is(err, store.ErrFormat):
		// Damaged and quarantined: simulate and re-record a good artifact.
		obsStoreFallbacks.Add(1)
	default:
		// Transient: retry once with backoff before giving up on the
		// store for this call.
		select {
		case <-time.After(storeRetryDelay):
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if r, err = rs.loadPreloaded(ctx, name, sts); err == nil {
			return r, true, nil
		}
		obsStoreFallbacks.Add(1)
		record = false
	}
	r, err = RunWorkloadContext(ctx, name)
	if err != nil {
		return nil, false, err
	}
	if record {
		_ = rs.SaveContext(ctx, name, r) // best-effort; failure to persist must not fail the run
	}
	return r, false, nil
}
