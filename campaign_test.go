package mbavf

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"mbavf/internal/inject"
)

func TestRunCampaignCheckpointResume(t *testing.T) {
	c, err := NewInjectionCampaign("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	const n, seed = 16, 3

	ref, refSum, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: n, Seed: seed, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if refSum.Classified() != n {
		t.Fatalf("reference run classified %d/%d", refSum.Classified(), n)
	}

	// Complete once with checkpointing, then truncate the checkpoint to
	// its first five shots — the state an interrupted run leaves behind —
	// and resume from it.
	path := filepath.Join(t.TempDir(), "vecadd.ckpt.json")
	if _, _, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: n, Seed: seed, Workers: 2, CheckpointPath: path, CheckpointEvery: 4,
	}); err != nil {
		t.Fatal(err)
	}
	ck, err := inject.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Shots) != n {
		t.Fatalf("checkpoint holds %d/%d shots", len(ck.Shots), n)
	}
	ck.Shots = ck.Shots[:5]
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}

	resumed, resSum, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: n, Seed: seed, Workers: 4, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, resumed) || refSum != resSum {
		t.Fatal("resumed campaign differs from uninterrupted run")
	}
}

func TestRunCampaignResumeRejectsMismatch(t *testing.T) {
	c, err := NewInjectionCampaign("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if _, _, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: 4, Seed: 1, CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	// Same file, different seed: the golden-digest/identity check must
	// refuse to resume rather than silently mix campaigns.
	if _, _, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: 4, Seed: 2, CheckpointPath: path, Resume: true,
	}); err == nil {
		t.Fatal("resume accepted a checkpoint from a different campaign")
	}
}
