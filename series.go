package mbavf

import (
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
)

// AVFSeries is a windowed AVF time profile: Total over the full run plus
// one AVF per window of Window cycles — the quantized-AVF view behind the
// paper's Figures 5 and 8.
type AVFSeries struct {
	Window  uint64
	Total   AVF
	Windows []AVF
}

func seriesOf(a *core.Analyzer, scheme Scheme, modeBits int, windows int) (AVFSeries, error) {
	impl, err := scheme.impl()
	if err != nil {
		return AVFSeries{}, err
	}
	if windows < 1 {
		return AVFSeries{}, fmt.Errorf("%w: need at least one window (got %d)", ErrBadOption, windows)
	}
	win := (a.TotalCycles + uint64(windows) - 1) / uint64(windows)
	if win == 0 {
		win = 1
	}
	s, err := a.AnalyzeWindowed(impl, bitgeom.Mx1(modeBits), win)
	if err != nil {
		return AVFSeries{}, err
	}
	out := AVFSeries{Window: win, Total: fromResult(&s.Total)}
	for i := range s.Windows {
		out.Windows = append(out.Windows, fromResult(&s.Windows[i]))
	}
	return out, nil
}

// L1AVFSeries measures the L1 MB-AVF over time, split into the given
// number of windows.
//
// Deprecated: use Run.AVFSeries with the L1 structure; this wrapper
// remains for source compatibility and forwards to the unified path.
func (r *Run) L1AVFSeries(scheme Scheme, il Interleaving, modeBits, windows int) (AVFSeries, error) {
	return r.AVFSeries(L1, scheme, il, modeBits, windows)
}

// VGPRAVFSeries measures the register-file MB-AVF over time.
//
// Deprecated: use Run.AVFSeries with the VGPR structure; this wrapper
// remains for source compatibility and forwards to the unified path.
func (r *Run) VGPRAVFSeries(scheme Scheme, il Interleaving, modeBits, windows int) (AVFSeries, error) {
	return r.AVFSeries(VGPR, scheme, il, modeBits, windows)
}
