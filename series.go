package mbavf

import (
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
)

// AVFSeries is a windowed AVF time profile: Total over the full run plus
// one AVF per window of Window cycles — the quantized-AVF view behind the
// paper's Figures 5 and 8.
type AVFSeries struct {
	Window  uint64
	Total   AVF
	Windows []AVF
}

func seriesOf(a *core.Analyzer, scheme Scheme, modeBits int, windows int) (AVFSeries, error) {
	impl, err := scheme.impl()
	if err != nil {
		return AVFSeries{}, err
	}
	if windows < 1 {
		return AVFSeries{}, fmt.Errorf("mbavf: need at least one window")
	}
	if modeBits < 1 {
		return AVFSeries{}, fmt.Errorf("mbavf: fault mode must span at least 1 bit")
	}
	win := (a.TotalCycles + uint64(windows) - 1) / uint64(windows)
	if win == 0 {
		win = 1
	}
	s, err := a.AnalyzeWindowed(impl, bitgeom.Mx1(modeBits), win)
	if err != nil {
		return AVFSeries{}, err
	}
	out := AVFSeries{Window: win, Total: fromResult(&s.Total)}
	for i := range s.Windows {
		out.Windows = append(out.Windows, fromResult(&s.Windows[i]))
	}
	return out, nil
}

// L1AVFSeries measures the L1 MB-AVF over time, split into the given
// number of windows.
func (r *Run) L1AVFSeries(scheme Scheme, il Interleaving, modeBits, windows int) (AVFSeries, error) {
	lay, err := r.l1Layout(il)
	if err != nil {
		return AVFSeries{}, err
	}
	return seriesOf(&core.Analyzer{
		Layout:      lay,
		Tracker:     r.l1Tracker,
		Graph:       r.graph,
		TotalCycles: r.cycles,
	}, scheme, modeBits, windows)
}

// VGPRAVFSeries measures the register-file MB-AVF over time.
func (r *Run) VGPRAVFSeries(scheme Scheme, il Interleaving, modeBits, windows int) (AVFSeries, error) {
	lay, preempt, err := r.vgprLayout(il)
	if err != nil {
		return AVFSeries{}, err
	}
	return seriesOf(&core.Analyzer{
		Layout:               lay,
		Tracker:              r.vgprTracker,
		Graph:                r.graph,
		WordVersions:         true,
		TotalCycles:          r.cycles,
		DetectionPreemptsSDC: preempt,
	}, scheme, modeBits, windows)
}
