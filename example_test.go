package mbavf_test

import (
	"fmt"
	"log"

	"mbavf"
)

// ExampleRunWorkload measures the multi-bit vulnerability of the L1 cache
// under two interleaving styles for the matmul workload. The simulator is
// fully deterministic, so the printed values are stable.
func ExampleRunWorkload() {
	run, err := mbavf.RunWorkload("matmul")
	if err != nil {
		log.Fatal(err)
	}
	for _, style := range []mbavf.Style{mbavf.StyleLogical, mbavf.StyleWayPhysical} {
		avf, err := run.L1AVF(mbavf.Parity, mbavf.Interleaving{Style: style, Factor: 2}, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: 2x1 MB-AVF is %.2fx the single-bit AVF\n", style, avf.DUE/avf.SBAVF)
	}
	// Output:
	// logical: 2x1 MB-AVF is 1.00x the single-bit AVF
	// way-physical: 2x1 MB-AVF is 1.94x the single-bit AVF
}

// ExampleAssembleKernel builds a custom kernel, runs it, and reads the
// result back.
func ExampleAssembleKernel() {
	kernel, err := mbavf.AssembleKernel("triple", `
v_mov   v0, tid
v_mul   v1, v0, 3
v_shl   v2, v0, 2
v_add   v2, v2, s0
v_store [v2], v1
s_endpgm
`)
	if err != nil {
		log.Fatal(err)
	}
	c, err := mbavf.NewCustom()
	if err != nil {
		log.Fatal(err)
	}
	out := c.Output(16)
	c.Dispatch(kernel, 1, out)
	if _, err := c.Finish(); err != nil {
		log.Fatal(err)
	}
	words, err := c.ReadWords(out, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(words)
	// Output:
	// [0 3 6 9]
}

// ExampleScheme_CheckBitOverhead reproduces the paper's protection-cost
// comparison for 32-bit registers.
func ExampleScheme_CheckBitOverhead() {
	for _, s := range []mbavf.Scheme{mbavf.Parity, mbavf.SECDED} {
		o, err := s.CheckBitOverhead(32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.1f%%\n", s, 100*o)
	}
	// Output:
	// parity: 3.1%
	// sec-ded: 21.9%
}
