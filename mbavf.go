// Package mbavf computes architectural vulnerability factors for spatial
// multi-bit transient faults (MB-AVFs), reproducing the methodology of
// "Calculating Architectural Vulnerability Factors for Spatial Multi-Bit
// Transient Faults" (MICRO 2014).
//
// The library couples an execution-driven APU simulator (a 4-compute-unit
// GPU with L1/L2 caches and a vector register file) with an ACE-analysis
// engine that classifies every fault group of a spatial fault mode —
// under a protection scheme and a bit-interleaving layout — as unACE,
// true DUE, false DUE, or SDC, cycle by cycle.
//
// Typical use:
//
//	run, err := mbavf.RunWorkload("minife")
//	avf, err := run.L1AVF(mbavf.Parity, mbavf.Interleaving{Style: mbavf.StyleIndexPhysical, Factor: 2}, 2)
//	fmt.Println(avf.DUE, avf.SDC)
//
// All workloads execute on the bundled simulator; see the examples
// directory for complete programs and cmd/mbavf-exp for the paper's
// tables and figures.
package mbavf

import (
	"context"
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/sim"
	"mbavf/internal/store"
	"mbavf/internal/workloads"
)

// Scheme selects an error-protection code for each protection domain.
type Scheme string

// Supported protection schemes.
const (
	NoProtection Scheme = "none"
	Parity       Scheme = "parity"
	SECDED       Scheme = "sec-ded"
	DECTED       Scheme = "dec-ted"
)

func (s Scheme) impl() (ecc.Scheme, error) {
	switch s {
	case NoProtection:
		return ecc.None{}, nil
	case Parity:
		return ecc.Parity{}, nil
	case SECDED:
		return ecc.SECDED{}, nil
	case DECTED:
		return ecc.DECTED{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown scheme %q", ErrBadOption, s)
	}
}

// CheckBitOverhead returns the scheme's relative check-bit area overhead
// for the given data-word width (e.g. SEC-DED over 32-bit words: 21.9%).
func (s Scheme) CheckBitOverhead(dataBits int) (float64, error) {
	impl, err := s.impl()
	if err != nil {
		return 0, err
	}
	return ecc.Overhead(impl, dataBits), nil
}

// Style selects how logical data words map onto physically adjacent bits.
type Style string

// Supported interleaving styles. Cache structures accept Logical,
// WayPhysical and IndexPhysical; the register file accepts IntraThread
// (rx) and InterThread (tx).
const (
	StyleLogical       Style = "logical"
	StyleWayPhysical   Style = "way-physical"
	StyleIndexPhysical Style = "index-physical"
	StyleIntraThread   Style = "intra-thread"
	StyleInterThread   Style = "inter-thread"
)

// Interleaving is a bit-interleaving configuration: a style plus a degree
// (1, 2 or 4 in the paper's studies).
type Interleaving struct {
	Style  Style
	Factor int
}

// AVF is the vulnerability of one (structure, scheme, interleaving, fault
// mode) combination measured over a workload run. All values are
// fractions in [0, 1].
type AVF struct {
	// DUE is the detected-uncorrected-error MB-AVF (the paper's Section V
	// model: union of detected-and-ACE region time).
	DUE float64
	// SDC, TrueDUE and FalseDUE are the four-class model of Section VII.
	SDC      float64
	TrueDUE  float64
	FalseDUE float64
	// SBAVF is the structure's raw single-bit ACE fraction
	// (microarchitectural), the normalization basis of the paper's
	// figures; SBAVFLive applies program-level masking.
	SBAVF     float64
	SBAVFLive float64
	// Groups is the number of fault groups of the mode in the structure;
	// Cycles is the measurement window.
	Groups int
	Cycles uint64
}

func fromResult(r *core.Result) AVF {
	return AVF{
		DUE:       r.DUEMBAVF(),
		SDC:       r.SDCMBAVF(),
		TrueDUE:   r.TrueDUEMBAVF(),
		FalseDUE:  r.FalseDUEMBAVF(),
		SBAVF:     r.BitAVF(),
		SBAVFLive: r.BitAVFLive(),
		Groups:    r.Groups,
		Cycles:    r.TotalCycles,
	}
}

// Run is a completed, instrumented simulation of one workload, ready for
// AVF analysis under any number of protection configurations. A Run is
// self-contained: it can be serialized with Save and revived with LoadRun
// (or recorded into a RunStore) without re-simulating — analysis over the
// rehydrated artifact is bit-identical to analysis over the original.
type Run struct {
	m *sim.Measurements
	// art, when non-nil, backs a run revived from a RunStore: m carries
	// the metadata (names, cycle counts, geometry) and the trackers and
	// graph decode lazily from the artifact on first use, so a query
	// pays only for the sections it touches. Laziness is memoized and
	// concurrency-safe inside the artifact, preserving the read-only
	// sharing contract analyses rely on.
	art *store.Artifact
}

func newRunFromSession(s *sim.Session) *Run {
	return &Run{m: s.Measurements()}
}

// Workloads lists the bundled benchmark names.
func Workloads() []string { return workloads.Names() }

// WorkloadDescription returns the one-line description of a bundled
// workload's access pattern.
func WorkloadDescription(name string) (string, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return "", err
	}
	return w.Description, nil
}

// RunWorkload executes the named workload on the default APU
// configuration with full instrumentation.
func RunWorkload(name string) (*Run, error) {
	return RunWorkloadContext(context.Background(), name)
}

// RunWorkloadContext is RunWorkload under a context: cancelling ctx (or
// exceeding its deadline) aborts the simulation between instructions and
// returns the context's error. Long-running servers use it to bound
// simulation time per request; the CLI entry points keep RunWorkload.
func RunWorkloadContext(ctx context.Context, name string) (*Run, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	s, err := sim.ExecuteContext(ctx, w, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return newRunFromSession(s), nil
}

// Cycles returns the run's duration in simulated cycles.
func (r *Run) Cycles() uint64 { return r.m.Cycles }

// Instructions returns the dynamic wavefront instruction count.
func (r *Run) Instructions() uint64 { return r.m.Instructions }

// Workload returns the name of the workload that produced the run (empty
// for runs loaded from artifacts recorded before names were stored).
func (r *Run) Workload() string { return r.m.Workload }

func cacheLayout(il Interleaving, sets, ways, lineBits int) (*interleave.Layout, error) {
	switch il.Style {
	case StyleLogical:
		return interleave.Logical(sets*ways, lineBits, il.Factor)
	case StyleWayPhysical:
		return interleave.WayPhysical(sets, ways, lineBits, il.Factor)
	case StyleIndexPhysical:
		return interleave.IndexPhysical(sets, ways, lineBits, il.Factor)
	default:
		return nil, fmt.Errorf("%w: interleaving style %q not valid for caches", ErrBadOption, il.Style)
	}
}

func (r *Run) l1Layout(il Interleaving) (*interleave.Layout, error) {
	return cacheLayout(il, r.m.L1Sets, r.m.L1Ways, r.m.LineBytes*8)
}

func (r *Run) l2Layout(il Interleaving) (*interleave.Layout, error) {
	return cacheLayout(il, r.m.L2Sets, r.m.L2Ways, r.m.LineBytes*8)
}

func (r *Run) vgprLayout(il Interleaving) (*interleave.Layout, bool, error) {
	switch il.Style {
	case StyleIntraThread:
		l, err := interleave.IntraThread(r.m.VGPRThreads, r.m.VGPRRegs, 32, il.Factor)
		return l, false, err
	case StyleInterThread:
		l, err := interleave.InterThread(r.m.VGPRThreads, r.m.VGPRRegs, 32, il.Factor)
		return l, true, err
	default:
		return nil, false, fmt.Errorf("%w: interleaving style %q not valid for register files", ErrBadOption, il.Style)
	}
}

func (r *Run) analyze(a *core.Analyzer, scheme Scheme, modeBits int) (AVF, error) {
	impl, err := scheme.impl()
	if err != nil {
		return AVF{}, err
	}
	res, err := a.Analyze(impl, bitgeom.Mx1(modeBits))
	if err != nil {
		return AVF{}, err
	}
	return fromResult(res), nil
}

// L1AVF measures the MB-AVF of an Mx1 fault mode (modeBits adjacent bits
// along a wordline) in compute unit 0's L1 data array.
//
// Deprecated: use Run.AVF with the L1 structure; this wrapper remains for
// source compatibility and forwards to the unified path unchanged.
func (r *Run) L1AVF(scheme Scheme, il Interleaving, modeBits int) (AVF, error) {
	return r.AVF(L1, scheme, il, modeBits)
}

// L2AVF measures the MB-AVF of an Mx1 fault mode in the shared L2 data
// array.
//
// Deprecated: use Run.AVF with the L2 structure; this wrapper remains for
// source compatibility and forwards to the unified path unchanged.
func (r *Run) L2AVF(scheme Scheme, il Interleaving, modeBits int) (AVF, error) {
	return r.AVF(L2, scheme, il, modeBits)
}

// VGPRAVF measures the MB-AVF of an Mx1 fault mode in compute unit 0's
// vector register file. Inter-thread interleaving applies the paper's
// detection-preempts-SDC rule (registers of a 16-thread group are read in
// lock-step, so an adjacent thread's DUE fires before an SDC propagates).
//
// Deprecated: use Run.AVF with the VGPR structure; this wrapper remains
// for source compatibility and forwards to the unified path unchanged.
func (r *Run) VGPRAVF(scheme Scheme, il Interleaving, modeBits int) (AVF, error) {
	return r.AVF(VGPR, scheme, il, modeBits)
}

// SER is a soft-error-rate roll-up over all fault modes of Table III.
type SER struct {
	// SDC and DUE are FIT-weighted rates (raw mode rate x measured AVF,
	// summed over 1x1..8x1).
	SDC float64
	DUE float64
}

// VGPRSER rolls the register file's per-mode AVFs into SDC and DUE soft
// error rates using the paper's Table III raw fault rates (total = 100).
//
// Deprecated: use Run.SER with the VGPR structure; this wrapper remains
// for source compatibility and forwards to the unified path unchanged.
func (r *Run) VGPRSER(scheme Scheme, il Interleaving) (SER, error) {
	return r.SER(VGPR, scheme, il)
}
