GO ?= go

.PHONY: all build vet test race ci bench clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The injection campaign runner is a worker pool; race-check it (and
# everything else) the way CI does. -short skips the full experiment
# pipelines, which exceed the test timeout under the race detector's
# slowdown; `make test` still runs them race-free.
race:
	$(GO) test -race -short ./...

ci: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
