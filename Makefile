GO ?= go

.PHONY: all build vet test race race-solver ci bench bench-baseline bench-compare fuzz-smoke serve-smoke fabric-smoke store-smoke clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The injection campaign runner and the analysis service
# (internal/serve: concurrent caches, singleflight, worker pools) are the
# most concurrency-heavy code here; race-check them (and everything else)
# the way CI does. -short skips the full experiment pipelines, which
# exceed the test timeout under the race detector's slowdown; `make test`
# still runs them race-free.
race:
	$(GO) test -race -short ./...

# Focused race pass over the ACE solver stack (packed + scalar paths,
# timeline packing, row remap): these packages run full — not -short —
# so the concurrent both-paths solver test executes under the detector.
race-solver:
	$(GO) test -race -count=1 ./internal/core ./internal/lifetime ./internal/interleave

# End-to-end smoke of the analysis service: boot it, hit the health,
# query, and metrics endpoints, then drain it with SIGTERM. CI runs the
# same sequence inline.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end smoke of the distributed campaign fabric: boot a two-worker
# fleet, kill one worker mid-campaign, and assert the results match the
# local run bit-for-bit with leases stolen from the dead worker. CI runs
# the same sequence inline.
fabric-smoke:
	./scripts/fabric-smoke.sh

# End-to-end smoke of the fleet-shared artifact store: one mbavf-serve
# exposes its disk store over /store/v1, two workers point at it with
# -store-url, and the same query against both must simulate exactly
# once fleet-wide — the second worker answering via ranged section
# fetches that transfer less than the whole artifact. CI runs the same
# sequence inline.
store-smoke:
	./scripts/store-smoke.sh

ci: vet build race race-solver fabric-smoke store-smoke

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# One full benchmark pass in `go test -json` form, captured as the
# machine-readable baseline for before/after performance comparisons.
bench-baseline:
	$(GO) test -json -bench=. -benchtime=1x -run=^$$ . > BENCH_baseline.json

# Fresh benchmark pass diffed against the committed baseline; fails when
# any benchmark slows down by more than the tolerance (see
# cmd/mbavf-benchdiff -h for the knobs).
bench-compare:
	$(GO) test -json -bench=. -benchtime=1x -run=^$$ . > BENCH_current.json
	$(GO) run ./cmd/mbavf-benchdiff -baseline BENCH_baseline.json -current BENCH_current.json

# Short fuzzing passes over every fuzz target (one invocation per
# target: `go test -fuzz` accepts a single match per package).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzAssembleRoundTrip -fuzztime=10s ./internal/gpu
	$(GO) test -run=^$$ -fuzz=FuzzCheckpointRoundTrip -fuzztime=10s ./internal/inject
	$(GO) test -run=^$$ -fuzz=FuzzHammingDecode -fuzztime=10s ./internal/ecc
	$(GO) test -run=^$$ -fuzz=FuzzStoreRoundTrip -fuzztime=10s ./internal/store
	$(GO) test -run=^$$ -fuzz=FuzzPackedTimeline -fuzztime=10s ./internal/core

clean:
	$(GO) clean ./...
