package mbavf

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestUnifiedAVFEquivalence pins the API redesign's compatibility
// contract: the deprecated per-structure entry points and the unified
// Run.AVF produce bit-identical numbers for every structure, scheme and
// interleaving style.
func TestUnifiedAVFEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full workload; skipped in -short (the -race CI leg)")
	}
	r := minife(t)
	// (factor, mode) pairs sample the interleaving/fault-mode plane; the
	// full cross product adds minutes without adding coverage (the scheme
	// and style change the analyzer's reaction model and layout, which is
	// what the grid covers; factor/mode only scale the geometry).
	points := []struct{ factor, mode int }{{1, 2}, {2, 2}, {4, 4}}
	schemes := Schemes()
	for _, st := range Structures() {
		for _, scheme := range schemes {
			for _, style := range st.Styles() {
				for _, p := range points {
					il := Interleaving{Style: style, Factor: p.factor}
					got, err := r.AVF(st, scheme, il, p.mode)
					if err != nil {
						t.Fatalf("AVF(%s,%s,%s,x%d,%d): %v", st, scheme, style, p.factor, p.mode, err)
					}
					var want AVF
					switch st {
					case L1:
						want, err = r.L1AVF(scheme, il, p.mode)
					case L2:
						want, err = r.L2AVF(scheme, il, p.mode)
					case VGPR:
						want, err = r.VGPRAVF(scheme, il, p.mode)
					}
					if err != nil {
						t.Fatalf("legacy %s: %v", st, err)
					}
					if got != want {
						t.Errorf("AVF(%s,%s,%s,x%d,%d) = %+v, legacy = %+v", st, scheme, style, p.factor, p.mode, got, want)
					}
				}
			}
		}
	}
}

func TestUnifiedSeriesEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full workload; skipped in -short (the -race CI leg)")
	}
	r := minife(t)
	il := Interleaving{Style: StyleLogical, Factor: 2}
	got, err := r.AVFSeries(L1, SECDED, il, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.L1AVFSeries(SECDED, il, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AVFSeries(L1) = %+v, legacy = %+v", got, want)
	}

	vil := Interleaving{Style: StyleIntraThread, Factor: 2}
	got, err = r.AVFSeries(VGPR, Parity, vil, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err = r.VGPRAVFSeries(Parity, vil, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AVFSeries(VGPR) = %+v, legacy = %+v", got, want)
	}
}

func TestUnifiedSEREquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full workload; skipped in -short (the -race CI leg)")
	}
	r := minife(t)
	il := Interleaving{Style: StyleInterThread, Factor: 4}
	got, err := r.SER(VGPR, SECDED, il)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.VGPRSER(SECDED, il)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("SER(VGPR) = %+v, legacy = %+v", got, want)
	}
	// Cache SER has no legacy counterpart; it must at least be finite and
	// bounded by the total raw rate.
	cs, err := r.SER(L1, Parity, Interleaving{Style: StyleLogical, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cs.SDC < 0 || cs.DUE < 0 || cs.SDC+cs.DUE > 100 {
		t.Errorf("L1 SER out of range: %+v", cs)
	}
}

func TestParseStructure(t *testing.T) {
	for _, st := range Structures() {
		got, err := ParseStructure(string(st))
		if err != nil || got != st {
			t.Errorf("ParseStructure(%q) = %v, %v", st, got, err)
		}
	}
	if _, err := ParseStructure("tlb"); !errors.Is(err, ErrBadOption) {
		t.Errorf("ParseStructure(tlb) err = %v, want ErrBadOption", err)
	}
}

// TestBadOptionsNoRun pins the validation cases that need no simulated
// run, so they stay in the -race -short leg.
func TestBadOptionsNoRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"negative injections", ExperimentOptions{Injections: -1}.Validate()},
		{"negative workers", ExperimentOptions{Workers: -2}.Validate()},
	} {
		if !errors.Is(tc.err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", tc.name, tc.err)
		}
	}
	if err := (ExperimentOptions{}).Validate(); err != nil {
		t.Errorf("zero options should validate: %v", err)
	}
}

// TestBadOptions pins the validation redesign: every malformed query is
// rejected with an error wrapping ErrBadOption instead of being silently
// coerced.
func TestBadOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full workload; skipped in -short (the -race CI leg)")
	}
	r := minife(t)
	cases := []struct {
		name string
		call func() error
	}{
		{"zero factor", func() error {
			_, err := r.AVF(L1, Parity, Interleaving{Style: StyleLogical, Factor: 0}, 2)
			return err
		}},
		{"zero mode bits", func() error {
			_, err := r.AVF(L1, Parity, Interleaving{Style: StyleLogical, Factor: 1}, 0)
			return err
		}},
		{"unknown scheme", func() error {
			_, err := r.AVF(L1, Scheme("hamming"), Interleaving{Style: StyleLogical, Factor: 1}, 2)
			return err
		}},
		{"unknown structure", func() error {
			_, err := r.AVF(Structure("tlb"), Parity, Interleaving{Style: StyleLogical, Factor: 1}, 2)
			return err
		}},
		{"zero series windows", func() error {
			_, err := r.AVFSeries(L1, Parity, Interleaving{Style: StyleLogical, Factor: 1}, 2, 0)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", tc.name, err)
		}
	}
}

func TestRunWorkloadContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWorkloadContext(ctx, "minife"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run err = %v, want context.Canceled", err)
	}
}
