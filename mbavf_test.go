package mbavf

import (
	"bytes"
	"sync"
	"testing"
)

// minifeRun caches the instrumented minife run shared by the facade tests.
var (
	minifeOnce sync.Once
	minifeR    *Run
	minifeErr  error
)

func minife(t *testing.T) *Run {
	t.Helper()
	minifeOnce.Do(func() {
		minifeR, minifeErr = RunWorkload("minife")
	})
	if minifeErr != nil {
		t.Fatal(minifeErr)
	}
	return minifeR
}

func TestWorkloadsExposed(t *testing.T) {
	names := Workloads()
	if len(names) < 10 {
		t.Fatalf("only %d workloads", len(names))
	}
	found := false
	for _, n := range names {
		if n == "minife" {
			found = true
		}
	}
	if !found {
		t.Error("minife missing")
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	if _, err := RunWorkload("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestL1AVFBasics(t *testing.T) {
	r := minife(t)
	if r.Cycles() == 0 || r.Instructions() == 0 {
		t.Fatal("empty run")
	}
	avf, err := r.L1AVF(Parity, Interleaving{Style: StyleLogical, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avf.SBAVF <= 0 || avf.SBAVF > 1 {
		t.Errorf("SBAVF = %v", avf.SBAVF)
	}
	if avf.DUE <= 0 || avf.DUE > 1 {
		t.Errorf("DUE = %v", avf.DUE)
	}
	if avf.Groups == 0 || avf.Cycles != r.Cycles() {
		t.Errorf("metadata wrong: %+v", avf)
	}
	if avf.SBAVFLive > avf.SBAVF {
		t.Errorf("program-masked AVF %v exceeds raw AVF %v", avf.SBAVFLive, avf.SBAVF)
	}
}

// TestMBAVFWithinPaperBounds encodes Section IV-D: 2x1 MB-AVF lies in
// [1x, 2x] SB-AVF for parity (every region detected).
func TestMBAVFWithinPaperBounds(t *testing.T) {
	r := minife(t)
	for _, style := range []Style{StyleLogical, StyleWayPhysical, StyleIndexPhysical} {
		avf, err := r.L1AVF(Parity, Interleaving{Style: style, Factor: 2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		ratio := avf.DUE / avf.SBAVF
		if ratio < 1.0-1e-9 || ratio > 2.0+1e-9 {
			t.Errorf("%s: MB/SB ratio %v outside [1,2]", style, ratio)
		}
	}
}

// TestLogicalInterleavingLowestMBAVF encodes the ACE-locality finding:
// logical interleaving has the lowest MB-AVF of the three styles.
func TestLogicalInterleavingLowestMBAVF(t *testing.T) {
	r := minife(t)
	get := func(style Style) float64 {
		avf, err := r.L1AVF(Parity, Interleaving{Style: style, Factor: 2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return avf.DUE
	}
	logical := get(StyleLogical)
	way := get(StyleWayPhysical)
	idx := get(StyleIndexPhysical)
	if logical > way || logical > idx {
		t.Errorf("logical %v should not exceed way %v / index %v", logical, way, idx)
	}
}

// TestMBAVFGrowsWithModeSize encodes Section VI-C: larger fault modes
// have larger MB-AVFs.
func TestMBAVFGrowsWithModeSize(t *testing.T) {
	r := minife(t)
	prev := 0.0
	for m := 1; m <= 4; m++ {
		avf, err := r.L1AVF(Parity, Interleaving{Style: StyleWayPhysical, Factor: 4}, m)
		if err != nil {
			t.Fatal(err)
		}
		if avf.DUE < prev-1e-12 {
			t.Errorf("%dx1 DUE %v below %v", m, avf.DUE, prev)
		}
		prev = avf.DUE
	}
}

// TestSECDEDCorrectsSingleBit: under SEC-DED a 1x1 fault is always
// corrected — zero DUE and SDC.
func TestSECDEDCorrectsSingleBit(t *testing.T) {
	r := minife(t)
	avf, err := r.L1AVF(SECDED, Interleaving{Style: StyleWayPhysical, Factor: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if avf.DUE != 0 || avf.SDC != 0 {
		t.Errorf("SEC-DED 1x1 should be fully corrected: %+v", avf)
	}
}

// TestParityEvenFaultsSDC: a 2x1 fault entirely inside one parity domain
// (no interleaving) defeats parity: SDC > 0 and detected-DUE = 0.
func TestParityEvenFaultsUndetected(t *testing.T) {
	r := minife(t)
	avf, err := r.L1AVF(Parity, Interleaving{Style: StyleLogical, Factor: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avf.DUE != 0 {
		t.Errorf("un-interleaved parity cannot detect 2x1 faults, DUE = %v", avf.DUE)
	}
	if avf.SDC <= 0 {
		t.Errorf("un-interleaved parity 2x1 should produce SDC, got %v", avf.SDC)
	}
}

// TestFig9Shape: with SEC-DED and x2 interleaving, 5x1 faults keep a DUE
// component (one domain sees exactly 2 flips) while 6x1 faults are all-SDC.
func TestFig9Shape(t *testing.T) {
	r := minife(t)
	il := Interleaving{Style: StyleWayPhysical, Factor: 2}
	five, err := r.L1AVF(SECDED, il, 5)
	if err != nil {
		t.Fatal(err)
	}
	six, err := r.L1AVF(SECDED, il, 6)
	if err != nil {
		t.Fatal(err)
	}
	if five.TrueDUE+five.FalseDUE <= 0 {
		t.Error("5x1 under SEC-DED x2 should retain a DUE component")
	}
	if six.TrueDUE+six.FalseDUE != 0 {
		t.Errorf("6x1 under SEC-DED x2 should have no DUE, got %v", six.TrueDUE+six.FalseDUE)
	}
	if six.SDC < five.SDC {
		t.Errorf("SDC should jump from 5x1 (%v) to 6x1 (%v)", five.SDC, six.SDC)
	}
}

func TestL2AVF(t *testing.T) {
	r := minife(t)
	avf, err := r.L2AVF(Parity, Interleaving{Style: StyleIndexPhysical, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avf.SBAVF <= 0 {
		t.Error("L2 should have nonzero ACE time for minife")
	}
}

func TestVGPRAVFAndPreemption(t *testing.T) {
	r := minife(t)
	intra, err := r.VGPRAVF(Parity, Interleaving{Style: StyleIntraThread, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := r.VGPRAVF(Parity, Interleaving{Style: StyleInterThread, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if intra.SBAVF <= 0 {
		t.Error("VGPR should have ACE time")
	}
	// Both split the 2x1 fault across two domains (detected), so no SDC.
	if intra.SDC != 0 || inter.SDC != 0 {
		t.Errorf("x2-interleaved 2x1 should have zero SDC: %v %v", intra.SDC, inter.SDC)
	}
}

// TestCaseStudyShape encodes the Section VIII headline: parity with x4
// inter-thread interleaving yields lower SDC than SEC-DED with x2
// interleaving.
func TestCaseStudyShape(t *testing.T) {
	r := minife(t)
	parityTX4, err := r.VGPRSER(Parity, Interleaving{Style: StyleInterThread, Factor: 4})
	if err != nil {
		t.Fatal(err)
	}
	eccRX2, err := r.VGPRSER(SECDED, Interleaving{Style: StyleIntraThread, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	eccTX2, err := r.VGPRSER(SECDED, Interleaving{Style: StyleInterThread, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if parityTX4.SDC > eccRX2.SDC {
		t.Errorf("parity tx4 SDC %v should be below SEC-DED rx2 SDC %v", parityTX4.SDC, eccRX2.SDC)
	}
	if parityTX4.SDC > eccTX2.SDC {
		t.Errorf("parity tx4 SDC %v should be below SEC-DED tx2 SDC %v", parityTX4.SDC, eccTX2.SDC)
	}
}

func TestSchemeOverheads(t *testing.T) {
	o, err := SECDED.CheckBitOverhead(32)
	if err != nil {
		t.Fatal(err)
	}
	if o < 0.218 || o > 0.220 {
		t.Errorf("SEC-DED 32-bit overhead = %v, want ~0.219", o)
	}
	if _, err := Scheme("bogus").CheckBitOverhead(32); err == nil {
		t.Error("bogus scheme should error")
	}
}

func TestInvalidConfigurations(t *testing.T) {
	r := minife(t)
	if _, err := r.L1AVF(Parity, Interleaving{Style: StyleIntraThread, Factor: 2}, 2); err == nil {
		t.Error("thread interleaving on a cache should error")
	}
	if _, err := r.VGPRAVF(Parity, Interleaving{Style: StyleLogical, Factor: 2}, 2); err == nil {
		t.Error("logical style on VGPR should error")
	}
	if _, err := r.L1AVF(Parity, Interleaving{Style: StyleLogical, Factor: 3}, 2); err == nil {
		t.Error("factor 3 over 512-bit lines should error")
	}
	if _, err := r.L1AVF("bogus", Interleaving{Style: StyleLogical, Factor: 2}, 2); err == nil {
		t.Error("bogus scheme should error")
	}
	if _, err := r.L1AVF(Parity, Interleaving{Style: StyleLogical, Factor: 2}, 0); err == nil {
		t.Error("zero-bit mode should error")
	}
}

func TestInjectionCampaignFacade(t *testing.T) {
	c, err := NewInjectionCampaign("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	results, sum, err := c.RunSingleBit(25, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 25 || sum.Masked+sum.SDC+sum.DUE != 25 {
		t.Fatalf("results %d, summary %+v", len(results), sum)
	}
	if sum.SDC > 0 {
		rows, err := c.RunInterference(results, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].Groups != sum.SDC {
			t.Errorf("interference groups %d != SDC count %d", rows[0].Groups, sum.SDC)
		}
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(Experiments()) != 19 {
		t.Errorf("experiments = %v", Experiments())
	}
	out, err := RunExperiment("table1", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Error("empty experiment output")
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

// TestACELocalityOrdering: logical interleaving keeps adjacent bits in
// the same line, maximizing the locality coefficient.
func TestACELocalityOrdering(t *testing.T) {
	r := minife(t)
	get := func(style Style) float64 {
		loc, err := r.L1ACELocality(Interleaving{Style: style, Factor: 2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if loc.Groups == 0 {
			t.Fatal("no groups")
		}
		return loc.Coefficient
	}
	logical := get(StyleLogical)
	way := get(StyleWayPhysical)
	idx := get(StyleIndexPhysical)
	if logical < way || logical < idx {
		t.Errorf("logical locality %v should be highest (way %v, idx %v)", logical, way, idx)
	}
	if logical <= 0 || logical > 1 {
		t.Errorf("locality coefficient %v outside (0,1]", logical)
	}
}

// TestVGPRACELocality: SIMD lanes execute in lock-step, so inter-thread
// locality is high.
func TestVGPRACELocality(t *testing.T) {
	r := minife(t)
	loc, err := r.VGPRACELocality(Interleaving{Style: StyleInterThread, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Coefficient <= 0.5 {
		t.Errorf("inter-thread VGPR locality %v suspiciously low for SIMD code", loc.Coefficient)
	}
}

func TestMTTFSweepFacade(t *testing.T) {
	pts, err := MTTFSweep([]float64{1e-4, 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.SpatialLow >= p.Temporal100yr {
			t.Errorf("spatial MTTF should sit below temporal at %g", p.RawFITPerBit)
		}
		if p.SpatialHigh >= p.SpatialLow {
			t.Error("5% fraction should lower MTTF vs 0.1%")
		}
	}
}

func TestAVFSeries(t *testing.T) {
	r := minife(t)
	series, err := r.L1AVFSeries(Parity, Interleaving{Style: StyleIndexPhysical, Factor: 2}, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Windows) < 5 || len(series.Windows) > 6 {
		t.Fatalf("windows = %d", len(series.Windows))
	}
	// Weighted window DUE must reconstruct the total.
	var acc float64
	var cyc uint64
	for _, w := range series.Windows {
		acc += w.DUE * float64(w.Cycles)
		cyc += w.Cycles
	}
	if cyc != series.Total.Cycles {
		t.Errorf("window cycles %d != total %d", cyc, series.Total.Cycles)
	}
	total := series.Total.DUE * float64(series.Total.Cycles)
	if acc < total*0.999 || acc > total*1.001 {
		t.Errorf("windowed DUE mass %v != total %v", acc, total)
	}
	if _, err := r.L1AVFSeries(Parity, Interleaving{Style: StyleLogical, Factor: 2}, 2, 0); err == nil {
		t.Error("zero windows should error")
	}
	vs, err := r.VGPRAVFSeries(Parity, Interleaving{Style: StyleInterThread, Factor: 2}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs.Windows) == 0 {
		t.Error("VGPR series empty")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := minife(t)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cycles() != r.Cycles() || loaded.Instructions() != r.Instructions() {
		t.Error("metadata mismatch after reload")
	}
	il := Interleaving{Style: StyleWayPhysical, Factor: 2}
	want, err := r.L1AVF(Parity, il, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.L1AVF(Parity, il, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Errorf("reloaded analysis differs:\n want %+v\n got  %+v", want, got)
	}
	vwant, err := r.VGPRAVF(SECDED, Interleaving{Style: StyleInterThread, Factor: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	vgot, err := loaded.VGPRAVF(SECDED, Interleaving{Style: StyleInterThread, Factor: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if vwant != vgot {
		t.Errorf("reloaded VGPR analysis differs")
	}
}

func TestLoadRunRejectsGarbage(t *testing.T) {
	if _, err := LoadRun(bytes.NewBufferString("not a gob")); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestWorkloadDescription(t *testing.T) {
	d, err := WorkloadDescription("minife")
	if err != nil || d == "" {
		t.Errorf("description = %q, %v", d, err)
	}
	if _, err := WorkloadDescription("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}
