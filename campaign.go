package mbavf

import (
	"context"
	"errors"
	"net/http"
	"os"
	"time"

	"mbavf/internal/fabric"
	"mbavf/internal/inject"
	"mbavf/internal/sim"
	"mbavf/internal/workloads"
)

// InjectionOutcome classifies a fault-injected run.
type InjectionOutcome string

// Injection outcomes. Masked/SDC/DUE follow the paper's taxonomy; Hang
// (instruction-budget livelock) and Crash (simulator panic, recovered)
// are the additional outcome classes large fault-injection studies treat
// as first-class.
const (
	Masked InjectionOutcome = "masked"
	SDC    InjectionOutcome = "sdc"
	DUE    InjectionOutcome = "due"
	Hang   InjectionOutcome = "hang"
	Crash  InjectionOutcome = "crash"
)

func outcomeOf(o inject.Outcome) InjectionOutcome {
	switch o {
	case inject.OutcomeSDC:
		return SDC
	case inject.OutcomeDUE:
		return DUE
	case inject.OutcomeHang:
		return Hang
	case inject.OutcomeCrash:
		return Crash
	default:
		return Masked
	}
}

// ErrInfrastructure marks campaign infrastructure failures (as opposed
// to classified injection outcomes); it aliases the internal sentinel so
// callers can test errors with errors.Is.
var ErrInfrastructure = inject.ErrInfra

// InjectionCampaign performs architectural fault injection into the GPU
// vector register file of a workload, the validation methodology behind
// the paper's Table II. It is safe for concurrent use.
type InjectionCampaign struct {
	name string
	c    *inject.Campaign
}

// NewInjectionCampaign records the golden run of the named workload.
func NewInjectionCampaign(workload string) (*InjectionCampaign, error) {
	return NewInjectionCampaignContext(context.Background(), workload)
}

// NewInjectionCampaignContext is NewInjectionCampaign under a context:
// cancelling ctx aborts the golden reference run, so a serving layer can
// tear down a campaign job before its setup completes.
func NewInjectionCampaignContext(ctx context.Context, workload string) (*InjectionCampaign, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	c, err := inject.NewCampaignContext(ctx, w, sim.InjectionConfig())
	if err != nil {
		return nil, err
	}
	return &InjectionCampaign{name: workload, c: c}, nil
}

// Workload returns the campaign's workload name.
func (ic *InjectionCampaign) Workload() string { return ic.name }

// InjectionResult is one injected run: a single-bit flip of the given
// register bit of the given VGPR thread at the given cycle.
type InjectionResult struct {
	Cycle   uint64
	Thread  int
	Reg     int
	Bit     int
	Outcome InjectionOutcome
}

// CampaignSummary tallies outcome classes plus infrastructure failures
// (shots that could not be classified at all but were recorded so the
// campaign could keep going).
type CampaignSummary struct {
	Masked, SDC, DUE, Hang, Crash int
	// Errors counts shots lost to infrastructure failures; they are
	// excluded from the outcome tallies and from the result list.
	Errors int
}

// Classified returns the number of successfully classified shots.
func (s CampaignSummary) Classified() int {
	return s.Masked + s.SDC + s.DUE + s.Hang + s.Crash
}

// CampaignRunConfig tunes a hardened campaign run.
type CampaignRunConfig struct {
	// Injections is the number of single-bit shots.
	Injections int
	// Seed drives target sampling; every shot derives its RNG from
	// (Seed, shot index), so any worker count gives identical results.
	Seed int64
	// Workers is the worker-pool size (values below 1 run serially).
	Workers int
	// Timeout bounds the whole run's wall clock (0 = none). On expiry
	// in-flight shots drain and the completed prefix is returned (and
	// checkpointed) with context.DeadlineExceeded.
	Timeout time.Duration
	// ErrorBudget aborts the campaign once more than this many shots
	// fail with infrastructure errors (0 = unlimited: record and keep
	// going).
	ErrorBudget int
	// CheckpointPath, when non-empty, enables periodic atomic JSON
	// checkpoints of completed shots and a final checkpoint when the
	// run ends for any reason (completion, cancellation, budget abort).
	CheckpointPath string
	// CheckpointEvery is the number of completed shots between periodic
	// checkpoint writes (default 32).
	CheckpointEvery int
	// Resume loads CheckpointPath (if it exists) and skips the shots it
	// already holds. The checkpoint must match the campaign's workload,
	// size, seed, and golden-output digest.
	Resume bool
	// Progress, when non-nil, observes campaign progress after every
	// completed shot (never concurrently). Completed includes shots
	// restored from a checkpoint — the hook async job queues use for
	// status polling.
	Progress func(completed, total int)
	// Fabric, when non-nil, distributes the campaign across a worker
	// fleet. Results stay bit-identical to a local run — the per-shot
	// (Seed, index) RNG guarantees it — and checkpoint/resume works
	// unchanged: a drain checkpoints whatever the fleet delivered.
	Fabric *FabricOptions
}

// FabricOptions configures distributed campaign execution.
type FabricOptions struct {
	// Workers is the fleet's base URLs (e.g. "http://host:8080"). Empty
	// runs in-process (the graceful-degradation floor).
	Workers []string
	// ShardSize is the number of shots per lease (default 64).
	ShardSize int
	// LeaseTTL is the per-lease heartbeat deadline; a lease silent for
	// this long is stolen and re-dispatched (default 15s).
	LeaseTTL time.Duration
	// ErrorBudget aborts the run after this many failed lease dispatches
	// (0 = unlimited; every failure retries or falls back in-process).
	ErrorBudget int
	// Transport overrides the coordinator's HTTP transport (tests inject
	// chaos here).
	Transport http.RoundTripper
}

// RunCampaign executes a parallel single-bit campaign with panic
// isolation, hang/crash classification, graceful degradation, and
// optional checkpoint/resume. Cancelling ctx drains in-flight shots and
// returns the completed prefix — with a checkpoint on disk when
// CheckpointPath is set — along with the context's error.
func (ic *InjectionCampaign) RunCampaign(ctx context.Context, cfg CampaignRunConfig) ([]InjectionResult, CampaignSummary, error) {
	rc := inject.RunConfig{
		N:         cfg.Injections,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Timeout:   cfg.Timeout,
		MaxErrors: cfg.ErrorBudget,
	}

	ck := inject.NewCheckpoint(ic.name, cfg.Injections, cfg.Seed, ic.c.Golden())
	if cfg.Resume && cfg.CheckpointPath != "" {
		loaded, err := inject.LoadCheckpoint(cfg.CheckpointPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume: a fresh run.
		case err != nil:
			return nil, CampaignSummary{}, err
		default:
			if err := loaded.Matches(ic.name, cfg.Injections, cfg.Seed, ic.c.Golden()); err != nil {
				return nil, CampaignSummary{}, err
			}
			rc.Completed = loaded.Shots
		}
	}

	var onCheckpoint func(inject.Shot)
	if cfg.CheckpointPath != "" {
		every := cfg.CheckpointEvery
		if every <= 0 {
			every = 32
		}
		ck.Shots = append(ck.Shots, rc.Completed...)
		sinceWrite := 0
		onCheckpoint = func(s inject.Shot) {
			ck.Shots = append(ck.Shots, s)
			sinceWrite++
			if sinceWrite >= every {
				sinceWrite = 0
				// Best effort mid-run; the final write reports errors.
				_ = ck.Save(cfg.CheckpointPath)
			}
		}
	}
	if onCheckpoint != nil || cfg.Progress != nil {
		completed := len(rc.Completed)
		rc.OnShot = func(s inject.Shot) {
			if onCheckpoint != nil {
				onCheckpoint(s)
			}
			if cfg.Progress != nil {
				completed++
				cfg.Progress(completed, cfg.Injections)
			}
		}
	}

	var rep *inject.RunReport
	var runErr error
	if cfg.Fabric != nil {
		co := fabric.New(fabric.Config{
			Workers:     cfg.Fabric.Workers,
			ShardSize:   cfg.Fabric.ShardSize,
			LeaseTTL:    cfg.Fabric.LeaseTTL,
			ErrorBudget: cfg.Fabric.ErrorBudget,
			Transport:   cfg.Fabric.Transport,
		}, ic.c)
		rep, runErr = co.Run(ctx, rc)
	} else {
		rep, runErr = ic.c.Run(ctx, rc)
	}
	if rep == nil {
		return nil, CampaignSummary{}, runErr
	}
	if cfg.CheckpointPath != "" {
		ck.Shots = rep.Shots
		if err := ck.Save(cfg.CheckpointPath); err != nil && runErr == nil {
			runErr = err
		}
	}

	results := make([]InjectionResult, 0, len(rep.Shots))
	var sum CampaignSummary
	for _, s := range rep.Shots {
		if s.Err != "" {
			sum.Errors++
			continue
		}
		results = append(results, InjectionResult{
			Cycle:   s.Target.Cycle,
			Thread:  s.Target.Thread,
			Reg:     s.Target.Reg,
			Bit:     s.Target.Bit,
			Outcome: outcomeOf(s.Outcome),
		})
		switch outcomeOf(s.Outcome) {
		case Masked:
			sum.Masked++
		case SDC:
			sum.SDC++
		case DUE:
			sum.DUE++
		case Hang:
			sum.Hang++
		case Crash:
			sum.Crash++
		}
	}
	return results, sum, runErr
}

// RunSingleBit performs n random single-bit injections with the given
// seed, serially, and returns every classified result — the simple
// entry point; RunCampaign adds parallelism, checkpointing, and
// graceful degradation. On error the results completed so far are
// returned alongside it.
func (ic *InjectionCampaign) RunSingleBit(n int, seed int64) ([]InjectionResult, CampaignSummary, error) {
	return ic.RunCampaign(context.Background(), CampaignRunConfig{Injections: n, Seed: seed, Workers: 1})
}

// InterferenceRow is the Table II result for one multi-bit fault-mode
// size.
type InterferenceRow struct {
	ModeSize     int
	Groups       int
	Interference int
}

// RunInterference injects, for every SDC outcome in results, the
// modeSizes-bit fault groups containing that bit, and counts ACE
// interference (groups masked despite containing an SDC ACE bit).
func (ic *InjectionCampaign) RunInterference(results []InjectionResult, modeSizes []int) ([]InterferenceRow, error) {
	var sdc []inject.Result
	for _, r := range results {
		if r.Outcome == SDC {
			sdc = append(sdc, inject.Result{
				Target:  inject.Target{Cycle: r.Cycle, Thread: r.Thread, Reg: r.Reg, Bit: r.Bit},
				Outcome: inject.OutcomeSDC,
			})
		}
	}
	study, err := ic.c.InterferenceStudy(sdc, modeSizes)
	out := make([]InterferenceRow, len(study))
	for i, s := range study {
		out[i] = InterferenceRow{ModeSize: s.ModeSize, Groups: s.Groups, Interference: s.Interference}
	}
	return out, err
}
