package mbavf

import (
	"mbavf/internal/inject"
	"mbavf/internal/sim"
	"mbavf/internal/workloads"
)

// InjectionOutcome classifies a fault-injected run.
type InjectionOutcome string

// Injection outcomes.
const (
	Masked InjectionOutcome = "masked"
	SDC    InjectionOutcome = "sdc"
	DUE    InjectionOutcome = "due"
)

func outcomeOf(o inject.Outcome) InjectionOutcome {
	switch o {
	case inject.OutcomeSDC:
		return SDC
	case inject.OutcomeDUE:
		return DUE
	default:
		return Masked
	}
}

// InjectionCampaign performs architectural fault injection into the GPU
// vector register file of a workload, the validation methodology behind
// the paper's Table II.
type InjectionCampaign struct {
	c *inject.Campaign
}

// NewInjectionCampaign records the golden run of the named workload.
func NewInjectionCampaign(workload string) (*InjectionCampaign, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	c, err := inject.NewCampaign(w, sim.InjectionConfig())
	if err != nil {
		return nil, err
	}
	return &InjectionCampaign{c: c}, nil
}

// InjectionResult is one injected run: a single-bit flip of the given
// register bit of the given VGPR thread at the given cycle.
type InjectionResult struct {
	Cycle   uint64
	Thread  int
	Reg     int
	Bit     int
	Outcome InjectionOutcome
}

// CampaignSummary tallies outcome classes.
type CampaignSummary struct {
	Masked, SDC, DUE int
}

// RunSingleBit performs n random single-bit injections with the given
// seed and returns every classified result.
func (ic *InjectionCampaign) RunSingleBit(n int, seed int64) ([]InjectionResult, CampaignSummary, error) {
	rs, err := ic.c.SingleBitCampaign(n, seed)
	if err != nil {
		return nil, CampaignSummary{}, err
	}
	out := make([]InjectionResult, len(rs))
	var sum CampaignSummary
	for i, r := range rs {
		out[i] = InjectionResult{
			Cycle:   r.Target.Cycle,
			Thread:  r.Target.Thread,
			Reg:     r.Target.Reg,
			Bit:     r.Target.Bit,
			Outcome: outcomeOf(r.Outcome),
		}
		switch out[i].Outcome {
		case Masked:
			sum.Masked++
		case SDC:
			sum.SDC++
		case DUE:
			sum.DUE++
		}
	}
	return out, sum, nil
}

// InterferenceRow is the Table II result for one multi-bit fault-mode
// size.
type InterferenceRow struct {
	ModeSize     int
	Groups       int
	Interference int
}

// RunInterference injects, for every SDC outcome in results, the
// modeSizes-bit fault groups containing that bit, and counts ACE
// interference (groups masked despite containing an SDC ACE bit).
func (ic *InjectionCampaign) RunInterference(results []InjectionResult, modeSizes []int) ([]InterferenceRow, error) {
	var sdc []inject.Result
	for _, r := range results {
		if r.Outcome == SDC {
			sdc = append(sdc, inject.Result{
				Target:  inject.Target{Cycle: r.Cycle, Thread: r.Thread, Reg: r.Reg, Bit: r.Bit},
				Outcome: inject.OutcomeSDC,
			})
		}
	}
	study, err := ic.c.InterferenceStudy(sdc, modeSizes)
	if err != nil {
		return nil, err
	}
	out := make([]InterferenceRow, len(study))
	for i, s := range study {
		out[i] = InterferenceRow{ModeSize: s.ModeSize, Groups: s.Groups, Interference: s.Interference}
	}
	return out, nil
}
