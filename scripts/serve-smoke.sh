#!/bin/sh
# End-to-end smoke test of the mbavf-serve analysis service: build it,
# boot it on a private port, exercise the health/query/metrics endpoints,
# and verify SIGTERM drains it cleanly (exit 0). Then boot a second, cold
# process sharing the first one's run-artifact store and prove it answers
# the same query from disk without simulating at all. Used by `make
# serve-smoke` and the CI server-smoke step.
set -eu

ADDR="127.0.0.1:18080"
WORK="$(mktemp -d)"
BIN="$WORK/mbavf-serve"
STORE="$WORK/store"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$BIN" ./cmd/mbavf-serve
"$BIN" -addr "$ADDR" -drain-timeout 30s -store "$STORE" &
PID=$!

# Wait for the listener (the binary prints "listening" before serving,
# so poll the socket rather than racing the log line).
for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$PID" 2>/dev/null; then echo "server died during boot" >&2; exit 1; fi
    sleep 0.2
done

echo "--- healthz"
curl -sf "http://$ADDR/healthz"

echo "--- catalog"
curl -sf "http://$ADDR/api/v1/catalog" | grep -q '"vecadd"'

echo "--- avf query (cold: simulates; warm: cache hit)"
URL="http://$ADDR/api/v1/avf?workload=vecadd&structure=l1&scheme=sec-ded&style=logical&factor=2&mode=2"
curl -sf "$URL" | grep -q '"sb_avf"'
curl -sf "$URL" | grep -q '"cached": true'

echo "--- policy query (cold: reclassifies the cached run; warm: cache hit)"
PURL="http://$ADDR/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded-on-use&style=logical&factor=2&mode=4"
curl -sf "$PURL" | grep -q '"delta_due"'
curl -sf "$PURL" | grep -q '"cached": true'
curl -sf "http://$ADDR/api/v1/catalog" | grep -q '"sec-ded-on-use"'

echo "--- bad query maps to 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/api/v1/avf?workload=vecadd&structure=l1&scheme=nope&style=logical&factor=2&mode=2")
[ "$CODE" = "400" ] || { echo "want 400, got $CODE" >&2; exit 1; }

echo "--- bad policy knobs map to 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/api/v1/policy?workload=vecadd&structure=l1&policy=chipkill&style=logical&factor=2&mode=4")
[ "$CODE" = "400" ] || { echo "unknown policy: want 400, got $CODE" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded&style=logical&factor=2&mode=4&scrub_interval=0")
[ "$CODE" = "400" ] || { echo "zero scrub interval: want 400, got $CODE" >&2; exit 1; }

echo "--- metrics"
curl -sf "http://$ADDR/metrics" | grep -q '^mbavf_serve_requests'
curl -sf "http://$ADDR/metrics" | grep -q '^mbavf_serve_cache_runs_misses'

echo "--- metrics: first boot simulated and recorded to the store"
curl -sf "http://$ADDR/metrics" | grep -q '^mbavf_serve_simulations'
curl -sf "http://$ADDR/metrics" | grep -q '^mbavf_store_puts'
ls "$STORE"/*.mbavf >/dev/null

echo "--- graceful drain on SIGTERM"
kill -TERM "$PID"
wait "$PID"

echo "--- cold start against the warm store"
"$BIN" -addr "$ADDR" -drain-timeout 30s -store "$STORE" &
PID=$!
for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$PID" 2>/dev/null; then echo "server died during second boot" >&2; exit 1; fi
    sleep 0.2
done
curl -sf "$URL" | grep -q '"sb_avf"'

echo "--- policy query against the warm store performs zero simulations"
curl -sf "$PURL" | grep -q '"delta_due"'

echo "--- metrics: second boot answered from the store, no simulation"
# Zero-valued series are not exposed, so "never simulated" is the
# absence of the simulations counter while store hits are present. The
# policy query above rode the store-served run too — policy evals are
# visible while the simulation counter stays absent.
METRICS="$(curl -sf "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '^mbavf_store_hits'
echo "$METRICS" | grep -q '^mbavf_policy_evals'
if echo "$METRICS" | grep -q '^mbavf_serve_simulations'; then
    echo "cold start simulated despite a warm store" >&2
    exit 1
fi

echo "--- graceful drain on SIGTERM (second boot)"
kill -TERM "$PID"
wait "$PID"

echo "serve-smoke: OK"
