#!/bin/sh
# End-to-end smoke test of the fleet-shared artifact store: one
# mbavf-serve process exposes its disk store over the HTTP artifact
# protocol (/store/v1), two worker processes point at it with
# -store-url, and the same query is sent to both. Exactly one worker
# may simulate; the other must answer from the shared store via ranged
# section fetches — transferring less than the whole artifact. Used by
# `make store-smoke` and the CI store-smoke step.
set -eu

STORE_ADDR="127.0.0.1:18090"
W1_ADDR="127.0.0.1:18091"
W2_ADDR="127.0.0.1:18092"
WORK="$(mktemp -d)"
BIN="$WORK/mbavf-serve"
STORE="$WORK/store"
trap 'kill "$STORE_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$BIN" ./cmd/mbavf-serve

wait_up() { # addr pid name
    for i in $(seq 1 50); do
        if curl -sf "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
        if ! kill -0 "$2" 2>/dev/null; then echo "$3 died during boot" >&2; exit 1; fi
        sleep 0.2
    done
    echo "$3 never came up" >&2
    exit 1
}

echo "--- boot artifact server + two workers sharing its store"
"$BIN" -addr "$STORE_ADDR" -drain-timeout 30s -store "$STORE" &
STORE_PID=$!
"$BIN" -addr "$W1_ADDR" -drain-timeout 30s -store-url "http://$STORE_ADDR" &
W1_PID=$!
"$BIN" -addr "$W2_ADDR" -drain-timeout 30s -store-url "http://$STORE_ADDR" &
W2_PID=$!
wait_up "$STORE_ADDR" "$STORE_PID" "artifact server"
wait_up "$W1_ADDR" "$W1_PID" "worker 1"
wait_up "$W2_ADDR" "$W2_PID" "worker 2"

QUERY="/api/v1/avf?workload=vecadd&structure=l1&scheme=parity&style=logical&factor=2&mode=1"

echo "--- worker 1: cold query simulates and records through the wire"
AVF1="$(curl -sf "http://$W1_ADDR$QUERY")"
echo "$AVF1" | grep -q '"sb_avf"'
M1="$(curl -sf "http://$W1_ADDR/metrics")"
echo "$M1" | grep -q '^mbavf_serve_simulations 1$'
echo "$M1" | grep -q '^mbavf_store_misses 1$'
echo "$M1" | grep -q '^mbavf_store_puts 1$'
ls "$STORE"/*.mbavf >/dev/null

echo "--- worker 2: same query answers from the shared store, no simulation"
AVF2="$(curl -sf "http://$W2_ADDR$QUERY")"
echo "$AVF2" | grep -q '"sb_avf"'
M2="$(curl -sf "http://$W2_ADDR/metrics")"
echo "$M2" | grep -q '^mbavf_store_hits'
echo "$M2" | grep -q 'mbavf_store_hits{backend="http"}'
if echo "$M2" | grep -q '^mbavf_serve_simulations'; then
    echo "worker 2 simulated despite the shared store" >&2
    exit 1
fi
if echo "$M2" | grep -q '^mbavf_store_misses'; then
    echo "worker 2 missed the shared store" >&2
    exit 1
fi

echo "--- fleet-wide: exactly one simulation, exactly one store miss"
SIMS=$(( $(echo "$M1" | awk '/^mbavf_serve_simulations /{print $2}') + $(echo "$M2" | awk '/^mbavf_serve_simulations /{print $2; f=1} END{if(!f)print 0}' | tail -1) ))
MISSES=$(( $(echo "$M1" | awk '/^mbavf_store_misses /{print $2}') + $(echo "$M2" | awk '/^mbavf_store_misses /{print $2; f=1} END{if(!f)print 0}' | tail -1) ))
[ "$SIMS" = 1 ] || { echo "fleet simulated $SIMS times, want exactly 1" >&2; exit 1; }
[ "$MISSES" = 1 ] || { echo "fleet missed the store $MISSES times, want exactly 1" >&2; exit 1; }

echo "--- worker 2 fetched sections lazily via Range requests"
echo "$M2" | grep -q '^mbavf_store_http_range_reads'
ART_FILE=$(ls "$STORE"/*.mbavf | head -1)
ART_BYTES=$(wc -c < "$ART_FILE")
READ_BYTES=$(echo "$M2" | awk '/^mbavf_store_bytes_read /{print $2}')
[ -n "$READ_BYTES" ] || { echo "worker 2 reports no store bytes read" >&2; exit 1; }
if [ "$READ_BYTES" -ge "$ART_BYTES" ]; then
    echo "worker 2 transferred $READ_BYTES bytes of a $ART_BYTES-byte artifact; lazy section fetch is not working" >&2
    exit 1
fi
echo "lazy fetch: $READ_BYTES of $ART_BYTES artifact bytes transferred"

echo "--- graceful drain of the whole fleet"
kill -TERM "$W1_PID" "$W2_PID"
wait "$W1_PID"
wait "$W2_PID"
kill -TERM "$STORE_PID"
wait "$STORE_PID"

echo "store-smoke: OK"
