#!/bin/sh
# End-to-end smoke test of the distributed campaign fabric and its
# fleet observability: build the worker, coordinator, and trace-merge
# binaries, boot a two-worker fleet with tracing and metrics on, run the
# same campaign locally and distributed — terminating one worker
# mid-run — and assert:
#   (a) the distributed outcome tallies are byte-identical to the local
#       run (stdout diff; the timeline and trace chatter go to stderr);
#   (b) the coordinator stole the dead worker's leases
#       (mbavf_fabric_leases_stolen > 0);
#   (c) the coordinator's /metrics carries mbavf_fleet_* series whose
#       unlabeled aggregate equals the sum of the worker-labeled samples;
#   (d) the three per-process traces merge into one Chrome trace holding
#       the campaign span, worker lease spans, and the steal instant
#       across three distinct pids;
#   (e) the -fabric-timeline summary reports the steal.
# Artifacts (merged trace, timeline, captured metrics page) are copied
# into $ARTIFACTS_DIR when set. Used by `make fabric-smoke` and the CI
# fabric-smoke step.
set -eu

W1="127.0.0.1:18091"
W2="127.0.0.1:18092"
DEBUG="127.0.0.1:18093"
WORK="$(mktemp -d)"
SERVE="$WORK/mbavf-serve"
INJECT="$WORK/mbavf-inject"
TRACE="$WORK/mbavf-trace"
W1PID=""
W2PID=""
trap 'kill -9 "$W1PID" "$W2PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$SERVE" ./cmd/mbavf-serve
go build -o "$INJECT" ./cmd/mbavf-inject
go build -o "$TRACE" ./cmd/mbavf-trace

# Worker 1 is a deliberate straggler: every shot is throttled hard, so
# when we terminate it mid-run the coordinator is guaranteed to be
# holding unfinished leases on it — the exact state lease stealing
# exists for. It dies by SIGTERM (not SIGKILL): the drain cancels its
# lease contexts, so the steal still happens, and the drain path flushes
# its trace — the dying worker's lease spans must reach the merged
# fleet trace.
"$SERVE" -addr "$W1" -worker -fabric-shot-delay 500ms \
    -metrics -trace "$WORK/w1-trace.json" -drain-timeout 2s &
W1PID=$!
"$SERVE" -addr "$W2" -worker \
    -metrics -trace "$WORK/w2-trace.json" -drain-timeout 2s &
W2PID=$!

for addr in "$W1" "$W2"; do
    for i in $(seq 1 50); do
        if curl -sf "http://$addr/fabric/v1/health" >/dev/null 2>&1; then break; fi
        sleep 0.2
    done
    curl -sf "http://$addr/fabric/v1/health" >/dev/null || {
        echo "worker $addr never became healthy" >&2
        exit 1
    }
done

echo "--- local reference campaign"
"$INJECT" -workload vecadd -n 48 -seed 5 -workers 2 >"$WORK/local.txt"

echo "--- distributed campaign (worker 1 terminated mid-run)"
"$INJECT" -workload vecadd -n 48 -seed 5 \
    -fabric-workers "http://$W1,http://$W2" \
    -fabric-shard 4 -fabric-lease-ttl 1s \
    -trace "$WORK/coord-trace.json" -fabric-timeline \
    -debug-addr "$DEBUG" >"$WORK/dist.txt" 2>"$WORK/dist.err" &
IPID=$!

# Terminate the straggler once the coordinator has dispatched leases to
# both workers; its in-flight leases can then only finish by being
# stolen. While polling, keep the freshest /metrics page that carries
# fleet series — the coordinator's debug server dies with the process,
# so the fleet-aggregation assertion below runs against this capture.
KILLED=0
STOLEN=0
while kill -0 "$IPID" 2>/dev/null; do
    METRICS="$(curl -sf "http://$DEBUG/metrics" 2>/dev/null || true)"
    if printf '%s\n' "$METRICS" | grep -q '^mbavf_fleet_'; then
        printf '%s\n' "$METRICS" >"$WORK/coord-metrics.txt"
    fi
    if [ "$KILLED" = 0 ]; then
        DISPATCHED="$(printf '%s\n' "$METRICS" | awk '/^mbavf_fabric_leases_dispatched /{print $2}')"
        if [ -n "${DISPATCHED:-}" ] && [ "$DISPATCHED" -ge 2 ]; then
            kill "$W1PID"
            KILLED=1
            echo "    terminated worker 1 after $DISPATCHED dispatched leases"
        fi
    fi
    V="$(printf '%s\n' "$METRICS" | awk '/^mbavf_fabric_leases_stolen /{print $2}')"
    [ -n "${V:-}" ] && STOLEN="$V"
    sleep 0.1
done
wait "$IPID" || { echo "distributed campaign failed:" >&2; cat "$WORK/dist.err" >&2; exit 1; }

[ "$KILLED" = 1 ] || { echo "campaign finished before any lease was dispatched" >&2; exit 1; }

echo "--- distributed tallies match the local run"
if ! diff -u "$WORK/local.txt" "$WORK/dist.txt"; then
    echo "distributed campaign diverged from the local run" >&2
    exit 1
fi

echo "--- dead worker's leases were stolen (stolen=$STOLEN)"
[ "$STOLEN" -gt 0 ] || { echo "no leases were stolen after terminating worker 1" >&2; exit 1; }

echo "--- coordinator /metrics aggregates the fleet"
[ -s "$WORK/coord-metrics.txt" ] || {
    echo "no mbavf_fleet_* series ever appeared on the coordinator's /metrics" >&2
    exit 1
}
awk '
    /^mbavf_fleet_fabric_worker_leases_done /  { agg = $2; seen_agg = 1 }
    /^mbavf_fleet_fabric_worker_leases_done\{/ { sum += $2; labeled++ }
    END {
        if (!seen_agg)   { print "missing aggregate mbavf_fleet_fabric_worker_leases_done sample" > "/dev/stderr"; exit 1 }
        if (labeled < 1) { print "no worker-labeled mbavf_fleet_fabric_worker_leases_done samples" > "/dev/stderr"; exit 1 }
        if (agg + 0 != sum + 0) {
            printf "fleet aggregate %d != sum of %d worker samples %d\n", agg, labeled, sum > "/dev/stderr"
            exit 1
        }
        printf "    aggregate %d == sum over %d worker(s)\n", agg, labeled
    }
' "$WORK/coord-metrics.txt"

echo "--- drain worker 2 and merge the per-process traces"
kill "$W2PID"
wait "$W2PID" 2>/dev/null || true
wait "$W1PID" 2>/dev/null || true
for f in coord-trace.json w1-trace.json w2-trace.json; do
    [ -s "$WORK/$f" ] || { echo "missing trace file $f" >&2; exit 1; }
done
"$TRACE" merge -o "$WORK/fleet-trace.json" \
    "$WORK/coord-trace.json" "$WORK/w1-trace.json" "$WORK/w2-trace.json" \
    >"$WORK/merge.txt"
cat "$WORK/merge.txt"
PIDS="$(grep -c '^  pid ' "$WORK/merge.txt")"
[ "$PIDS" -eq 3 ] || { echo "merged trace has $PIDS pids, want 3" >&2; exit 1; }
grep -q '"campaign:vecadd"' "$WORK/fleet-trace.json" || {
    echo "merged trace is missing the coordinator campaign span" >&2; exit 1; }
grep -q '"lease ' "$WORK/fleet-trace.json" || {
    echo "merged trace is missing worker lease spans" >&2; exit 1; }
grep -q '"steal ' "$WORK/fleet-trace.json" || {
    echo "merged trace is missing the steal instant" >&2; exit 1; }

echo "--- timeline reports the steal"
grep -q 'fabric timeline' "$WORK/dist.err" || {
    echo "-fabric-timeline printed no timeline" >&2; exit 1; }
TSTOLEN="$(awk '/leases stolen/{print $NF; exit}' "$WORK/dist.err")"
[ -n "${TSTOLEN:-}" ] && [ "$TSTOLEN" -gt 0 ] || {
    echo "timeline reports no stolen leases (got '${TSTOLEN:-}')" >&2
    cat "$WORK/dist.err" >&2
    exit 1
}

if [ -n "${ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$ARTIFACTS_DIR"
    cp "$WORK/fleet-trace.json" "$ARTIFACTS_DIR/fleet-trace.json"
    cp "$WORK/dist.err" "$ARTIFACTS_DIR/fabric-timeline.txt"
    cp "$WORK/coord-metrics.txt" "$ARTIFACTS_DIR/coordinator-metrics.txt"
    echo "--- artifacts copied to $ARTIFACTS_DIR"
fi

echo "fabric-smoke: OK"
