#!/bin/sh
# End-to-end smoke test of the distributed campaign fabric: build the
# worker and coordinator binaries, boot a two-worker fleet, run the same
# campaign locally and distributed — killing one worker mid-run — and
# assert (a) the distributed outcome tallies are byte-identical to the
# local run and (b) the coordinator actually stole the dead worker's
# leases (mbavf_fabric_leases_stolen > 0). Used by `make fabric-smoke`
# and the CI fabric-smoke step.
set -eu

W1="127.0.0.1:18091"
W2="127.0.0.1:18092"
DEBUG="127.0.0.1:18093"
WORK="$(mktemp -d)"
SERVE="$WORK/mbavf-serve"
INJECT="$WORK/mbavf-inject"
W1PID=""
W2PID=""
trap 'kill -9 "$W1PID" "$W2PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$SERVE" ./cmd/mbavf-serve
go build -o "$INJECT" ./cmd/mbavf-inject

# Worker 1 is a deliberate straggler: every shot is throttled hard, so
# when we kill it mid-run the coordinator is guaranteed to be holding
# unfinished leases on it — the exact state lease stealing exists for.
"$SERVE" -addr "$W1" -worker -fabric-shot-delay 500ms &
W1PID=$!
"$SERVE" -addr "$W2" -worker &
W2PID=$!

for addr in "$W1" "$W2"; do
    for i in $(seq 1 50); do
        if curl -sf "http://$addr/fabric/v1/health" >/dev/null 2>&1; then break; fi
        sleep 0.2
    done
    curl -sf "http://$addr/fabric/v1/health" >/dev/null || {
        echo "worker $addr never became healthy" >&2
        exit 1
    }
done

echo "--- local reference campaign"
"$INJECT" -workload vecadd -n 48 -seed 5 -workers 2 >"$WORK/local.txt"

echo "--- distributed campaign (worker 1 killed mid-run)"
"$INJECT" -workload vecadd -n 48 -seed 5 \
    -fabric-workers "http://$W1,http://$W2" \
    -fabric-shard 4 -fabric-lease-ttl 1s \
    -debug-addr "$DEBUG" >"$WORK/dist.txt" 2>"$WORK/dist.err" &
IPID=$!

# Kill the straggler once the coordinator has dispatched leases to both
# workers; its in-flight leases can then only finish by being stolen.
KILLED=0
STOLEN=0
while kill -0 "$IPID" 2>/dev/null; do
    METRICS="$(curl -sf "http://$DEBUG/metrics" 2>/dev/null || true)"
    if [ "$KILLED" = 0 ]; then
        DISPATCHED="$(printf '%s\n' "$METRICS" | awk '/^mbavf_fabric_leases_dispatched /{print $2}')"
        if [ -n "${DISPATCHED:-}" ] && [ "$DISPATCHED" -ge 2 ]; then
            kill -9 "$W1PID"
            KILLED=1
            echo "    killed worker 1 after $DISPATCHED dispatched leases"
        fi
    fi
    V="$(printf '%s\n' "$METRICS" | awk '/^mbavf_fabric_leases_stolen /{print $2}')"
    [ -n "${V:-}" ] && STOLEN="$V"
    sleep 0.1
done
wait "$IPID" || { echo "distributed campaign failed:" >&2; cat "$WORK/dist.err" >&2; exit 1; }

[ "$KILLED" = 1 ] || { echo "campaign finished before any lease was dispatched" >&2; exit 1; }

echo "--- distributed tallies match the local run"
if ! diff -u "$WORK/local.txt" "$WORK/dist.txt"; then
    echo "distributed campaign diverged from the local run" >&2
    exit 1
fi

echo "--- dead worker's leases were stolen (stolen=$STOLEN)"
[ "$STOLEN" -gt 0 ] || { echo "no leases were stolen after killing worker 1" >&2; exit 1; }

echo "fabric-smoke: OK"
