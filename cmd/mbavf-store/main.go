// Command mbavf-store manages a persistent run-artifact store: the
// "record once, analyze forever" companion to mbavf-exp and mbavf-serve.
// Recording simulates a workload once and commits its instrumented
// measurements (lifetime segments, solved liveness graph, cycle counts,
// machine fingerprint) as a compact CRC-checked artifact; every later
// analysis — any structure, scheme, interleaving, or fault mode — loads
// it back in milliseconds, bit-identical to a fresh simulation.
//
// Usage:
//
//	mbavf-store -dir runs record minife comd   # simulate + record
//	mbavf-store -dir runs record all           # record every workload
//	mbavf-store -dir runs ls                   # list artifacts
//	mbavf-store -dir runs inspect <key>        # metadata + section layout
//	mbavf-store -dir runs verify               # full decode of every artifact
//	mbavf-store -dir runs gc -max-bytes 100000000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mbavf"
	"mbavf/internal/store"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mbavf-store -dir <store> <command> [args]

commands:
  record <workload>... | all   simulate workloads and record their artifacts
  ls                           list stored artifacts (damaged ones flagged)
  inspect <key>                show one artifact's metadata and sections
  verify [<key>...]            fully decode artifacts, report damage
  gc [-max-bytes N]            sweep quarantine/temp files, evict oldest over N
`)
	os.Exit(2)
}

func main() {
	dir := flag.String("dir", "", "store directory (required)")
	flag.Usage = usage
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		usage()
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	var err error
	switch cmd {
	case "record":
		err = record(*dir, args)
	case "ls":
		err = ls(*dir)
	case "inspect":
		if len(args) != 1 {
			usage()
		}
		err = inspect(*dir, args[0])
	case "verify":
		err = verify(*dir, args)
	case "gc":
		err = gc(*dir, args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbavf-store: %v\n", err)
		os.Exit(1)
	}
}

// record simulates each named workload (or all of them) and commits its
// artifact. Already-recorded workloads are skipped — recording is
// idempotent — and SIGINT stops between workloads, keeping everything
// committed so far.
func record(dir string, names []string) error {
	rs, err := mbavf.OpenRunStore(dir)
	if err != nil {
		return err
	}
	if len(names) == 1 && names[0] == "all" {
		names = mbavf.Workloads()
	}
	if len(names) == 0 {
		return errors.New("record: no workloads named (use 'all' for every workload)")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for _, name := range names {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if rs.Has(name) {
			if _, err := rs.Load(name); err == nil {
				fmt.Printf("%s  %s (already recorded)\n", rs.Key(name), name)
				continue
			}
			// Damaged artifact: Load quarantined it; re-record below.
		}
		start := time.Now()
		r, err := mbavf.RunWorkloadContext(ctx, name)
		if err != nil {
			return fmt.Errorf("record %s: %w", name, err)
		}
		if err := rs.Save(name, r); err != nil {
			return fmt.Errorf("record %s: %w", name, err)
		}
		fmt.Printf("%s  %s (simulated %d cycles in %v)\n",
			rs.Key(name), name, r.Cycles(), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func ls(dir string) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	infos, err := st.List()
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Println("(empty store)")
		return nil
	}
	fmt.Printf("%-32s  %-12s  %10s  %12s  %s\n", "KEY", "WORKLOAD", "BYTES", "CYCLES", "RECORDED")
	for _, in := range infos {
		if in.Err != nil {
			fmt.Printf("%-32s  DAMAGED: %v\n", in.Key, in.Err)
			continue
		}
		fmt.Printf("%-32s  %-12s  %10d  %12d  %s\n",
			in.Key, in.Meta.Workload, in.Bytes, in.Meta.Cycles, in.ModTime.Format(time.RFC3339))
	}
	return nil
}

func inspect(dir, key string) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	in, err := st.Inspect(key)
	if err != nil {
		return err
	}
	m := in.Meta
	fmt.Printf("key:          %s\n", in.Key)
	fmt.Printf("workload:     %s\n", m.Workload)
	fmt.Printf("config:       %s\n", m.ConfigFP)
	fmt.Printf("cycles:       %d\n", m.Cycles)
	fmt.Printf("instructions: %d\n", m.Instructions)
	fmt.Printf("l1 geometry:  %d sets x %d ways x %dB lines\n", m.L1Sets, m.L1Ways, m.LineBytes)
	fmt.Printf("l2 geometry:  %d sets x %d ways\n", m.L2Sets, m.L2Ways)
	fmt.Printf("vgpr:         %d threads x %d regs\n", m.VGPRThreads, m.VGPRRegs)
	fmt.Printf("file:         %d bytes, recorded %s\n", in.Bytes, in.ModTime.Format(time.RFC3339))
	fmt.Println("sections:")
	for _, s := range in.Sections {
		fmt.Printf("  %-6s %8d bytes  crc ok\n", s.Name, s.Bytes)
	}
	return nil
}

// verify fully decodes the named artifacts (or every artifact), so every
// CRC and payload invariant is exercised. Damage is reported, not
// quarantined — verify is a diagnostic.
func verify(dir string, keys []string) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		infos, err := st.List()
		if err != nil {
			return err
		}
		for _, in := range infos {
			keys = append(keys, in.Key)
		}
	}
	bad := 0
	for _, key := range keys {
		if err := st.Verify(key); err != nil {
			bad++
			fmt.Printf("%s  FAIL: %v\n", key, err)
		} else {
			fmt.Printf("%s  ok\n", key)
		}
	}
	if bad > 0 {
		return fmt.Errorf("verify: %d damaged artifact(s)", bad)
	}
	return nil
}

func gc(dir string, args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	maxBytes := fs.Int64("max-bytes", 0, "evict oldest artifacts until the store fits (0 = only sweep quarantine and temp files)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	removed, freed, err := st.GC(*maxBytes)
	if err != nil {
		return err
	}
	fmt.Printf("gc: removed %d file(s), freed %d bytes\n", removed, freed)
	return nil
}
