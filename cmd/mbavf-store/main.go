// Command mbavf-store manages a persistent run-artifact store: the
// "record once, analyze forever" companion to mbavf-exp and mbavf-serve.
// Recording simulates a workload once and commits its instrumented
// measurements (lifetime segments, solved liveness graph, cycle counts,
// machine fingerprint) as a compact CRC-checked artifact; every later
// analysis — any structure, scheme, interleaving, or fault mode — loads
// it back in milliseconds, bit-identical to a fresh simulation.
//
// The store may be a local directory (-dir) or a remote artifact server
// (-url, pointing at an mbavf-serve started with -store -store-serve),
// so one process can record into — or audit — the fleet's shared store.
//
// Usage:
//
//	mbavf-store -dir runs record minife comd   # simulate + record
//	mbavf-store -dir runs record all           # record every workload
//	mbavf-store -dir runs ls                   # list artifacts
//	mbavf-store -dir runs inspect <key>        # metadata + section layout
//	mbavf-store -dir runs verify               # per-section CRC + decode audit
//	mbavf-store -dir runs gc -max-bytes 100000000 -dry-run
//	mbavf-store -url http://storehost:8080 ls  # same, against a remote store
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mbavf"
	"mbavf/internal/store"
	"mbavf/internal/store/httpstore"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mbavf-store {-dir <store> | -url <base-url>} <command> [args]

commands:
  record <workload>... | all   simulate workloads and record their artifacts
  ls                           list stored artifacts (damaged ones flagged)
  inspect <key>                show one artifact's metadata and sections
  verify [<key>...]            check every section CRC and payload, report damage
  gc [-max-bytes N] [-dry-run] sweep quarantine/temp files, evict oldest over N
`)
	os.Exit(2)
}

func main() {
	dir := flag.String("dir", "", "store directory (this or -url required)")
	url := flag.String("url", "", "artifact-server base URL (this or -dir required)")
	flag.Usage = usage
	flag.Parse()
	if (*dir == "") == (*url == "") || flag.NArg() < 1 {
		usage()
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	st, err := openStore(*dir, *url)
	if err == nil {
		switch cmd {
		case "record":
			err = record(ctx, st, args)
		case "ls":
			err = ls(ctx, st)
		case "inspect":
			if len(args) != 1 {
				usage()
			}
			err = inspect(ctx, st, args[0])
		case "verify":
			err = verify(ctx, st, args)
		case "gc":
			err = gc(ctx, st, args)
		default:
			usage()
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbavf-store: %v\n", err)
		os.Exit(1)
	}
}

// openStore builds the store over whichever backend the flags selected:
// a local directory or a remote artifact server.
func openStore(dir, url string) (*store.Store, error) {
	if url != "" {
		return store.NewStore(httpstore.New(url)), nil
	}
	return store.Open(dir)
}

// record simulates each named workload (or all of them) and commits its
// artifact. Already-recorded workloads are skipped — recording is
// idempotent — and SIGINT stops between workloads, keeping everything
// committed so far.
func record(ctx context.Context, st *store.Store, names []string) error {
	rs := mbavf.NewRunStore(st.Backend())
	if len(names) == 1 && names[0] == "all" {
		names = mbavf.Workloads()
	}
	if len(names) == 0 {
		return errors.New("record: no workloads named (use 'all' for every workload)")
	}
	for _, name := range names {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if rs.Has(name) {
			if _, err := rs.LoadContext(ctx, name); err == nil {
				fmt.Printf("%s  %s (already recorded)\n", rs.Key(name), name)
				continue
			}
			// Damaged artifact: Load quarantined it; re-record below.
		}
		start := time.Now()
		r, err := mbavf.RunWorkloadContext(ctx, name)
		if err != nil {
			return fmt.Errorf("record %s: %w", name, err)
		}
		if err := rs.SaveContext(ctx, name, r); err != nil {
			return fmt.Errorf("record %s: %w", name, err)
		}
		fmt.Printf("%s  %s (simulated %d cycles in %v)\n",
			rs.Key(name), name, r.Cycles(), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func ls(ctx context.Context, st *store.Store) error {
	infos, err := st.List(ctx)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Println("(empty store)")
		return nil
	}
	fmt.Printf("%-32s  %-12s  %10s  %12s  %s\n", "KEY", "WORKLOAD", "BYTES", "CYCLES", "RECORDED")
	for _, in := range infos {
		if in.Err != nil {
			fmt.Printf("%-32s  DAMAGED: %v\n", in.Key, in.Err)
			continue
		}
		fmt.Printf("%-32s  %-12s  %10d  %12d  %s\n",
			in.Key, in.Meta.Workload, in.Bytes, in.Meta.Cycles, in.ModTime.Format(time.RFC3339))
	}
	return nil
}

func inspect(ctx context.Context, st *store.Store, key string) error {
	in, err := st.Inspect(ctx, key)
	if err != nil {
		return err
	}
	m := in.Meta
	fmt.Printf("key:          %s\n", in.Key)
	fmt.Printf("workload:     %s\n", m.Workload)
	fmt.Printf("config:       %s\n", m.ConfigFP)
	fmt.Printf("cycles:       %d\n", m.Cycles)
	fmt.Printf("instructions: %d\n", m.Instructions)
	fmt.Printf("l1 geometry:  %d sets x %d ways x %dB lines\n", m.L1Sets, m.L1Ways, m.LineBytes)
	fmt.Printf("l2 geometry:  %d sets x %d ways\n", m.L2Sets, m.L2Ways)
	fmt.Printf("vgpr:         %d threads x %d regs\n", m.VGPRThreads, m.VGPRRegs)
	fmt.Printf("file:         %d bytes, recorded %s\n", in.Bytes, in.ModTime.Format(time.RFC3339))
	fmt.Println("sections:")
	for _, s := range in.Sections {
		fmt.Printf("  %-6s %8d bytes  crc ok\n", s.Name, s.Bytes)
	}
	return nil
}

// verify audits the named artifacts (or every artifact): each section's
// CRC is checked and reported individually, then the surviving payloads
// are fully decoded so every invariant is exercised. Damage is reported,
// not quarantined — verify is a diagnostic.
func verify(ctx context.Context, st *store.Store, keys []string) error {
	if len(keys) == 0 {
		infos, err := st.List(ctx)
		if err != nil {
			return err
		}
		for _, in := range infos {
			keys = append(keys, in.Key)
		}
	}
	bad := 0
	for _, key := range keys {
		secs, err := st.VerifySections(ctx, key)
		damaged := err != nil
		for _, s := range secs {
			if s.Err != nil {
				damaged = true
				fmt.Printf("%s  section %-6s FAIL: %v\n", key, s.Name, s.Err)
			}
		}
		switch {
		case err != nil:
			fmt.Printf("%s  FAIL: %v\n", key, err)
		case !damaged:
			// Sections are CRC-clean; now prove the payloads decode.
			if err := st.Verify(ctx, key); err != nil {
				damaged = true
				fmt.Printf("%s  FAIL: %v\n", key, err)
			} else {
				fmt.Printf("%s  ok (%d sections)\n", key, len(secs))
			}
		}
		if damaged {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("verify: %d damaged artifact(s)", bad)
	}
	return nil
}

func gc(ctx context.Context, st *store.Store, args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	maxBytes := fs.Int64("max-bytes", 0, "evict oldest artifacts until the store fits (0 = only sweep quarantine and temp files)")
	dryRun := fs.Bool("dry-run", false, "report what would be removed without removing anything")
	if err := fs.Parse(args); err != nil {
		return err
	}
	removed, freed, err := st.GC(ctx, *maxBytes, *dryRun)
	if err != nil {
		return err
	}
	if *dryRun {
		fmt.Printf("gc: would remove %d file(s), freeing %d bytes\n", removed, freed)
		return nil
	}
	fmt.Printf("gc: removed %d file(s), freed %d bytes\n", removed, freed)
	return nil
}
