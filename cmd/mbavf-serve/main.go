// Command mbavf-serve runs the MB-AVF analysis service: an HTTP/JSON API
// over the simulator that caches completed workload runs, deduplicates
// concurrent identical queries down to a single simulation, and executes
// fault-injection campaigns and paper experiments as pollable
// asynchronous jobs.
//
//	mbavf-serve -addr :8080
//	curl 'localhost:8080/api/v1/avf?workload=vecadd&structure=l1&scheme=sec-ded&style=logical&factor=4&mode=4'
//
// On SIGINT/SIGTERM the server drains: new requests get 503 (so health
// checks fail and load balancers stop routing), queued jobs are shed,
// and in-flight work gets -drain-timeout to finish before being
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mbavf"
	"mbavf/internal/core"
	"mbavf/internal/obs"
	"mbavf/internal/serve"
	"mbavf/internal/store"
	"mbavf/internal/store/httpstore"
)

// splitPeers parses the -fabric-workers list, dropping empty entries so
// a trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxSims      = flag.Int("max-sims", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		maxJobs      = flag.Int("max-jobs", 1, "max concurrent asynchronous jobs")
		runsCached   = flag.Int("runs-per-shard", 4, "cached runs per cache shard")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Minute, "per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on shutdown")
		storeDir     = flag.String("store", "", "persistent run-artifact store directory (empty = memory-only caching)")
		storeURL     = flag.String("store-url", "", "base URL of a remote artifact server (another mbavf-serve with -store-serve); mutually exclusive with -store")
		storeServe   = flag.Bool("store-serve", true, "with -store, also serve the artifact store over HTTP (/store/v1/*) so other processes can share it")
		storeScrub   = flag.Duration("store-scrub", 0, "with -store, run background CRC scrubs and GC at this interval (0 = off)")
		storeMax     = flag.Int64("store-max-bytes", 0, "with -store-scrub, evict oldest artifacts once the store exceeds this many bytes (0 = unbounded)")
		worker       = flag.Bool("worker", false, "serve the distributed-campaign fabric worker endpoints (/fabric/v1/*)")
		fabricPeers  = flag.String("fabric-workers", "", "comma-separated worker base URLs; makes this server a fabric coordinator")
		shotDelay    = flag.Duration("fabric-shot-delay", 0, "throttle every fabric shot by this much (chaos/testing knob for straggler rehearsal; leave 0 in production)")
		scalarSolve  = flag.Bool("scalar-solve", false, "force the scalar per-bit ACE solver instead of the packed word-parallel one (bit-identical results, slower; for cross-checking)")
		metrics      = flag.Bool("metrics", false, "enable the observability layer (counters, events, fleet scraping) without tracing")
		tracePath    = flag.String("trace", "", "record a Chrome trace and write it here on drain/exit (implies -metrics)")
	)
	flag.Parse()
	core.SetScalarSolve(*scalarSolve)

	role := "standalone"
	switch {
	case *worker && *fabricPeers != "":
		role = "worker+coordinator"
	case *worker:
		role = "worker"
	case *fabricPeers != "":
		role = "coordinator"
	}
	obs.SetProcessName(fmt.Sprintf("mbavf-serve %s %s", role, *addr))
	if *metrics || *tracePath != "" {
		obs.Enable()
	}
	if *tracePath != "" {
		obs.StartTrace()
	}
	writeTrace := func() {
		if *tracePath == "" {
			return
		}
		obs.StopTrace()
		if err := obs.WriteTrace(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "mbavf-serve: writing trace: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "mbavf-serve: trace written to %s\n", *tracePath)
	}

	var rs *mbavf.RunStore
	serveArtifacts := false
	switch {
	case *storeDir != "" && *storeURL != "":
		fmt.Fprintln(os.Stderr, "mbavf-serve: -store and -store-url are mutually exclusive")
		os.Exit(1)
	case *storeDir != "":
		var err error
		if rs, err = mbavf.OpenRunStore(*storeDir); err != nil {
			fmt.Fprintf(os.Stderr, "mbavf-serve: opening store: %v\n", err)
			os.Exit(1)
		}
		serveArtifacts = *storeServe
		fmt.Fprintf(os.Stderr, "mbavf-serve: run-artifact store at %s\n", rs.Dir())
	case *storeURL != "":
		rs = mbavf.NewRunStore(httpstore.New(*storeURL))
		fmt.Fprintf(os.Stderr, "mbavf-serve: remote run-artifact store at %s\n", rs.Dir())
	}
	if rs != nil && *storeScrub > 0 {
		go rs.Maintain(context.Background(), store.MaintainConfig{
			Interval: *storeScrub,
			MaxBytes: *storeMax,
			Scrub:    true,
		})
	}

	s := serve.New(serve.Config{
		MaxSims:         *maxSims,
		MaxJobs:         *maxJobs,
		RunsPerShard:    *runsCached,
		RequestTimeout:  *reqTimeout,
		Store:           rs,
		ServeArtifacts:  serveArtifacts,
		FabricWorker:    *worker,
		FabricPeers:     splitPeers(*fabricPeers),
		FabricShotDelay: *shotDelay,
	})
	// ReadHeaderTimeout and ReadTimeout bound how long a client may take
	// to deliver a request (slow-loris defense); request bodies here are
	// small JSON documents, so 30s is generous. Response writing stays
	// unbounded — synchronous AVF queries legitimately compute for
	// minutes before the first byte.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mbavf-serve: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "mbavf-serve: %v\n", err)
		writeTrace()
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "mbavf-serve: draining (up to %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mbavf-serve: shutdown: %v\n", err)
	}
	<-errCh // ListenAndServe has returned http.ErrServerClosed
	// The trace flushes on every drain path — including the SIGTERM a
	// smoke test sends to "kill" a worker — so a dying worker's lease
	// spans still make it into the merged fleet trace.
	writeTrace()
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "mbavf-serve: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mbavf-serve: drained cleanly")
}
