// Command mbavf-trace works with the Chrome trace_event files the other
// tools record (-trace flags on mbavf-inject, mbavf-exp, mbavf-serve).
//
// merge stitches a coordinator's trace and its workers' traces into one
// fleet trace: timestamps are rebased onto a shared wall-clock origin,
// colliding process ids are reassigned, and every process keeps its
// named row. Async campaign spans correlate across files, so a worker's
// lease execution nests under the coordinator's campaign span when the
// merged file is loaded into chrome://tracing or ui.perfetto.dev.
//
// Usage:
//
//	mbavf-trace merge -o fleet.json coord.json worker1.json worker2.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mbavf/internal/obs"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mbavf-trace merge -o <out.json> <trace.json> [<trace.json>...]`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 || os.Args[1] != "merge" {
		usage()
	}
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "merged-trace.json", "output file for the merged trace")
	_ = fs.Parse(os.Args[2:])
	if fs.NArg() == 0 {
		usage()
	}

	docs := make([][]byte, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbavf-trace: %v\n", err)
			os.Exit(1)
		}
		docs = append(docs, data)
	}
	merged, stats, err := obs.MergeTraces(docs...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbavf-trace: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, merged, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mbavf-trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d traces (%d events) into %s\n", stats.Files, stats.Events, *out)
	for _, pid := range stats.Pids {
		fmt.Printf("  pid %d: %s\n", pid, stats.Processes[pid])
	}
}
