// Command mbavf-sim runs one workload on the APU simulator and prints an
// AVF summary of its L1 cache and vector register file under several
// protection configurations.
//
// Usage:
//
//	mbavf-sim -workload minife
//	mbavf-sim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"mbavf"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "mbavf-sim:", err)
	os.Exit(1)
}

func main() {
	workload := flag.String("workload", "minife", "workload to simulate")
	list := flag.Bool("list", false, "list available workloads")
	mode := flag.Int("mode", 2, "fault-mode width in bits (Mx1)")
	save := flag.String("save", "", "write the run's measurement artifact to this file")
	load := flag.String("load", "", "analyze a previously saved artifact instead of simulating")
	flag.Parse()

	if *list {
		for _, n := range mbavf.Workloads() {
			desc, err := mbavf.WorkloadDescription(n)
			if err != nil {
				die(err)
			}
			fmt.Printf("%-20s %s\n", n, desc)
		}
		return
	}

	var run *mbavf.Run
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			die(ferr)
		}
		run, err = mbavf.LoadRun(f)
		f.Close()
		if err != nil {
			die(err)
		}
		fmt.Printf("artifact %s: %d cycles, %d wavefront instructions\n\n",
			*load, run.Cycles(), run.Instructions())
	} else {
		run, err = mbavf.RunWorkload(*workload)
		if err != nil {
			die(err)
		}
		fmt.Printf("workload %s: %d cycles, %d wavefront instructions\n\n",
			*workload, run.Cycles(), run.Instructions())
	}
	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			die(ferr)
		}
		if err := run.Save(f); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("saved measurement artifact to %s\n\n", *save)
	}

	fmt.Printf("L1 cache, %dx1 faults:\n", *mode)
	fmt.Printf("  %-22s %-8s %10s %10s %10s %10s\n", "interleaving", "scheme", "SB-AVF", "DUE", "SDC", "falseDUE")
	for _, cfg := range []struct {
		style  mbavf.Style
		scheme mbavf.Scheme
	}{
		{mbavf.StyleLogical, mbavf.Parity},
		{mbavf.StyleWayPhysical, mbavf.Parity},
		{mbavf.StyleIndexPhysical, mbavf.Parity},
		{mbavf.StyleWayPhysical, mbavf.SECDED},
	} {
		avf, err := run.L1AVF(cfg.scheme, mbavf.Interleaving{Style: cfg.style, Factor: 2}, *mode)
		if err != nil {
			die(err)
		}
		fmt.Printf("  %-22s %-8s %10.4f %10.4f %10.4f %10.4f\n",
			string(cfg.style)+"-x2", cfg.scheme, avf.SBAVF, avf.DUE, avf.SDC, avf.FalseDUE)
	}

	fmt.Printf("\nVGPR, %dx1 faults:\n", *mode)
	fmt.Printf("  %-22s %-8s %10s %10s %10s\n", "interleaving", "scheme", "SB-AVF", "DUE", "SDC")
	for _, cfg := range []struct {
		style  mbavf.Style
		scheme mbavf.Scheme
	}{
		{mbavf.StyleIntraThread, mbavf.Parity},
		{mbavf.StyleInterThread, mbavf.Parity},
		{mbavf.StyleInterThread, mbavf.SECDED},
	} {
		avf, err := run.VGPRAVF(cfg.scheme, mbavf.Interleaving{Style: cfg.style, Factor: 2}, *mode)
		if err != nil {
			die(err)
		}
		fmt.Printf("  %-22s %-8s %10.4f %10.4f %10.4f\n",
			string(cfg.style)+"-x2", cfg.scheme, avf.SBAVF, avf.TrueDUE+avf.FalseDUE, avf.SDC)
	}
}
