// Command mbavf-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	mbavf-exp -exp fig4                 # one experiment
//	mbavf-exp -exp all                  # everything
//	mbavf-exp -exp table2 -injections 500
//	mbavf-exp -exp fig6 -workloads minife,comd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mbavf"
	"mbavf/internal/core"
	"mbavf/internal/experiments"
	"mbavf/internal/obs"
	"mbavf/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: a paper artifact (table1, fig2, fig4, fig5, fig6, table2, fig8, fig9, fig10, table3, fig11), an ablation (locality, schemes, geometry, l2, cachesize, validate), the protection-policy sweep (policies), or 'all' for the paper set")
	workloadsFlag := flag.String("workloads", "", "comma-separated workload subset (default: the paper set)")
	injections := flag.Int("injections", 200, "single-bit injections per benchmark for table2")
	iworkers := flag.Int("iworkers", runtime.NumCPU(), "injection worker-pool size (identical results for any value)")
	windows := flag.Int("windows", 12, "time windows for fig5/fig8")
	avfWindows := flag.Int("avf-windows", 0, "emit the avft time-resolved AVF series with this many windows (adds 'avft' to -exp all)")
	seed := flag.Int64("seed", 42, "injection sampling seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	svgDir := flag.String("svgdir", "", "also write one SVG figure per table into this directory")
	obsFlag := flag.Bool("obs", false, "print a per-experiment observability summary (phase timings and counters)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of all simulation/analysis phases to this file")
	debugAddr := flag.String("debug-addr", "", "serve expvar, pprof, and Prometheus /metrics on this address (e.g. :8080 or :0 for a free port)")
	storeDir := flag.String("store", "", "persistent run-artifact store directory: load recorded runs instead of simulating, record fresh ones")
	fabricWorkers := flag.String("fabric-workers", "", "comma-separated fabric worker base URLs; distributes injection campaigns across the fleet")
	scalarSolve := flag.Bool("scalar-solve", false, "force the scalar per-bit ACE solver instead of the packed word-parallel one (bit-identical results, slower; for cross-checking)")
	policiesFlag := flag.String("policies", "", "comma-separated protection policies for the policies experiment (default: all built-in policies)")
	scrubInterval := flag.Int64("scrub-interval", 0, "scrub period in cycles for the scrubbing policies (0 = built-in default; must not be negative)")
	flag.Parse()

	obs.SetProcessName("mbavf-exp " + *exp)
	if *obsFlag {
		obs.Enable()
	}
	core.SetScalarSolve(*scalarSolve)
	if *tracePath != "" {
		obs.StartTrace()
	}
	// writeTrace flushes the recorded trace; fail routes every error exit
	// through it, so the trace survives all exit paths — a partial trace
	// of an interrupted or failed experiment is precisely the artifact an
	// operator wants.
	writeTrace := func() {
		if *tracePath == "" {
			return
		}
		if err := obs.WriteTrace(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "mbavf-exp: trace: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "mbavf-exp: wrote %d trace events to %s\n", obs.TraceEventCount(), *tracePath)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mbavf-exp: "+format+"\n", args...)
		writeTrace()
		os.Exit(1)
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "mbavf-exp: debug server on http://%s/debug/vars (Prometheus on /metrics)\n", addr)
	}

	// SIGINT/SIGTERM cancel the experiment context; simulations and
	// campaigns drain, e.Run returns the cancellation, and the fail path
	// still writes the trace recorded so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := mbavf.ExperimentOptions{
		Injections:    *injections,
		Windows:       *windows,
		AVFWindows:    *avfWindows,
		Seed:          *seed,
		Workers:       *iworkers,
		StoreDir:      *storeDir,
		ScrubInterval: *scrubInterval,
	}
	if *workloadsFlag != "" {
		opts.Workloads = strings.Split(*workloadsFlag, ",")
	}
	if *policiesFlag != "" {
		for _, p := range strings.Split(*policiesFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.Policies = append(opts.Policies, p)
			}
		}
	}
	// Fail fast on bad policy knobs (unknown names, negative scrub
	// interval) before any simulation starts.
	if err := opts.Validate(); err != nil {
		fail("%v", err)
	}
	if *fabricWorkers != "" {
		for _, p := range strings.Split(*fabricWorkers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.FabricWorkers = append(opts.FabricWorkers, p)
			}
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig2", "fig4", "fig5", "fig6", "table2", "fig8", "fig9", "fig10", "table3", "fig11"}
		if *avfWindows > 0 {
			names = append(names, "avft")
		}
	}
	for _, name := range names {
		start := time.Now()
		e, err := experiments.ByName(name)
		if err != nil {
			fail("%v", err)
		}
		io := toInternal(opts)
		io.Context = ctx
		tables, err := e.Run(io)
		if err != nil {
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				fail("%s interrupted: %v", name, err)
			}
			fail("%s: %v", name, err)
		}
		fmt.Print(experiments.RenderAll(tables, *csv))
		if *svgDir != "" {
			if err := writeFigures(e, tables, *svgDir); err != nil {
				fail("%s figures: %v", name, err)
			}
		}
		if *obsFlag {
			fmt.Print(experiments.RenderAll(obs.SummaryTables(name), *csv))
			obs.Reset()
		}
		if !*csv {
			fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	writeTrace()
}

// writeFigures renders an experiment's already-computed tables as SVG
// files named <exp>-<n>.svg.
func writeFigures(e experiments.Experiment, tables []*report.Table, dir string) error {
	if e.Chart.Skip {
		return nil
	}
	figs, err := e.Figures(tables)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, svg := range figs {
		path := filepath.Join(dir, fmt.Sprintf("%s-%d.svg", e.Name, i+1))
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// toInternal translates public options to the internal registry's.
func toInternal(opts mbavf.ExperimentOptions) experiments.Options {
	io := experiments.DefaultOptions()
	if len(opts.Workloads) > 0 {
		io.Workloads = opts.Workloads
	}
	if opts.Injections > 0 {
		io.Injections = opts.Injections
	}
	if opts.Windows > 0 {
		io.Windows = opts.Windows
	}
	if opts.Seed != 0 {
		io.Seed = opts.Seed
	}
	if opts.Workers > 0 {
		io.Workers = opts.Workers
	}
	if opts.AVFWindows > 0 {
		io.AVFWindows = opts.AVFWindows
	}
	if len(opts.Policies) > 0 {
		io.Policies = opts.Policies
	}
	if opts.ScrubInterval > 0 {
		io.ScrubInterval = opts.ScrubInterval
	}
	io.StoreDir = opts.StoreDir
	io.FabricWorkers = opts.FabricWorkers
	return io
}
