package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCapture(t *testing.T, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var data []byte
	for _, l := range lines {
		data = append(data, []byte(l+"\n")...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	path := writeCapture(t, "cap.json",
		`{"Action":"output","Package":"mbavf","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"mbavf","Test":"BenchmarkFig4/obs=off","Output":"BenchmarkFig4/obs=off     \t       1\t1177733762 ns/op\n"}`,
		`{"Action":"output","Package":"mbavf","Test":"BenchmarkTable1","Output":"BenchmarkTable1-8         \t       1\t     81611 ns/op\n"}`,
		`not json at all`,
		`{"Action":"pass","Package":"mbavf"}`,
	)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkFig4/obs=off"] != 1177733762 {
		t.Fatalf("obs=off = %v", got["BenchmarkFig4/obs=off"])
	}
	// The -8 GOMAXPROCS suffix is stripped so names match across hosts.
	if got["BenchmarkTable1"] != 81611 {
		t.Fatalf("Table1 = %v (suffix not stripped?)", got["BenchmarkTable1"])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	path := writeCapture(t, "empty.json", `{"Action":"start","Package":"mbavf"}`)
	if _, err := parseBench(path); err == nil {
		t.Fatal("want error for a capture with no benchmark results")
	}
}
