// Command mbavf-benchdiff compares two `go test -json` benchmark captures
// (the form `make bench-baseline` writes) and fails when any benchmark
// regressed beyond a tolerance.
//
// Usage:
//
//	mbavf-benchdiff -baseline BENCH_baseline.json -current BENCH_current.json
//	mbavf-benchdiff -baseline old.json -current new.json -tolerance 0.25
//
// Benchmarks are matched by name (the GOMAXPROCS -N suffix is stripped).
// Sub-millisecond benchmarks are skipped by default: at -benchtime=1x a
// single iteration of a microsecond-scale benchmark is dominated by timer
// noise, not by the code under test.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches a benchmark result inside a test2json Output field,
// e.g. "BenchmarkFig4/obs=off     \t       1\t1177733762 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// gomaxprocsSuffix is the trailing -N the bench runner appends when
// GOMAXPROCS is reported; stripping it keeps names stable across hosts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts name → ns/op from a go test -json stream. A name
// that appears more than once keeps its last value (re-runs supersede).
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (interleaved logs)
		}
		if ev.Action != "output" {
			continue
		}
		m := benchLine.FindStringSubmatch(ev.Output)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[gomaxprocsSuffix.ReplaceAllString(m[1], "")] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "go test -json capture to compare against")
	current := flag.String("current", "BENCH_current.json", "go test -json capture of the fresh run")
	tolerance := flag.Float64("tolerance", 0.5, "allowed fractional slowdown before failing (0.5 = +50%)")
	minNS := flag.Float64("min-ns", 1e6, "ignore benchmarks whose baseline is below this many ns/op (single-iteration noise)")
	flag.Parse()

	base, err := parseBench(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbavf-benchdiff:", err)
		os.Exit(2)
	}
	cur, err := parseBench(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbavf-benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	regressions := 0
	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok {
			fmt.Printf("%-40s %14.0f %14s %8s\n", n, b, "missing", "-")
			continue
		}
		delta := c/b - 1
		mark := ""
		if b >= *minNS && delta > *tolerance {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%%%s\n", n, b, c, 100*delta, mark)
	}
	for n := range cur {
		if _, ok := base[n]; !ok {
			fmt.Printf("%-40s %14s %14.0f %8s\n", n, "new", cur[n], "-")
		}
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "mbavf-benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", regressions, 100**tolerance)
		os.Exit(1)
	}
	fmt.Printf("no regressions beyond %.0f%% (min %v ns/op)\n", 100**tolerance, *minNS)
}
