package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSIGINTCheckpointResume exercises the binary end to end: a campaign
// interrupted by SIGINT must write a checkpoint, and a -resume run must
// finish it with the same final summary as an uninterrupted run.
func TestSIGINTCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mbavf-inject")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "ckpt.json")
	args := []string{"-workload", "vecadd", "-n", "800", "-seed", "3", "-workers", "2", "-checkpoint", ckpt}

	interrupted := exec.Command(bin, args...)
	var stderr bytes.Buffer
	interrupted.Stderr = &stderr
	if err := interrupted.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // let the golden run finish and shots start
	if err := interrupted.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := interrupted.Wait()
	if _, statErr := os.Stat(ckpt); statErr != nil {
		t.Fatalf("no checkpoint after SIGINT (exit: %v, stderr: %s)", err, stderr.String())
	}
	if err == nil {
		t.Log("campaign finished before the signal landed; resume still must agree")
	} else if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("unexpected failure mode: %v\n%s", err, stderr.String())
	}

	resumed, err := exec.Command(bin, append(args, "-resume")...).Output()
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	reference, err := exec.Command(bin, args[:len(args)-2]...).Output() // no -checkpoint
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if string(resumed) != string(reference) {
		t.Fatalf("resumed summary differs from uninterrupted run:\n--- resumed\n%s--- reference\n%s", resumed, reference)
	}
}
