// Command mbavf-inject runs fault-injection campaigns against a
// workload's vector register file: a single-bit campaign to classify
// outcomes, and optionally the multi-bit ACE-interference study
// (paper Table II).
//
// Usage:
//
//	mbavf-inject -workload prefixsum -n 500
//	mbavf-inject -workload dct -n 200 -interference
package main

import (
	"flag"
	"fmt"
	"os"

	"mbavf"
)

func main() {
	workload := flag.String("workload", "prefixsum", "workload to inject into")
	n := flag.Int("n", 200, "number of single-bit injections")
	seed := flag.Int64("seed", 1, "sampling seed")
	interference := flag.Bool("interference", false, "run the 2x1/3x1/4x1 ACE-interference study on SDC bits")
	flag.Parse()

	c, err := mbavf.NewInjectionCampaign(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbavf-inject:", err)
		os.Exit(1)
	}
	results, sum, err := c.RunSingleBit(*n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbavf-inject:", err)
		os.Exit(1)
	}
	total := float64(len(results))
	fmt.Printf("%s: %d single-bit injections\n", *workload, len(results))
	fmt.Printf("  masked: %5d (%5.1f%%)\n", sum.Masked, 100*float64(sum.Masked)/total)
	fmt.Printf("  sdc:    %5d (%5.1f%%)\n", sum.SDC, 100*float64(sum.SDC)/total)
	fmt.Printf("  due:    %5d (%5.1f%%)\n", sum.DUE, 100*float64(sum.DUE)/total)

	if *interference {
		rows, err := c.RunInterference(results, []int{2, 3, 4})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbavf-inject:", err)
			os.Exit(1)
		}
		fmt.Println("\nACE-interference study (multi-bit groups around SDC ACE bits):")
		for _, r := range rows {
			fmt.Printf("  %dx1: %d groups, %d with interference\n", r.ModeSize, r.Groups, r.Interference)
		}
	}
}
