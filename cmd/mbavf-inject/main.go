// Command mbavf-inject runs fault-injection campaigns against a
// workload's vector register file: a single-bit campaign to classify
// outcomes (masked/sdc/due/hang/crash), and optionally the multi-bit
// ACE-interference study (paper Table II).
//
// The campaign runs on a worker pool with deterministic per-shot
// sampling, so any -workers value produces identical results. Completed
// shots are checkpointed atomically to -checkpoint; SIGINT (or -timeout
// expiry) drains in-flight shots, writes a final checkpoint, and exits,
// and a later run with -resume picks up exactly where it stopped.
//
// Usage:
//
//	mbavf-inject -workload prefixsum -n 500 -workers 8
//	mbavf-inject -workload dct -n 200 -interference
//	mbavf-inject -workload dct -n 5000 -checkpoint dct.ckpt.json
//	mbavf-inject -workload dct -n 5000 -checkpoint dct.ckpt.json -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"mbavf"
	"mbavf/internal/fabric"
	"mbavf/internal/obs"
)

// splitPeers parses the -fabric-workers list, dropping empty entries so
// a trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	workload := flag.String("workload", "prefixsum", "workload to inject into")
	n := flag.Int("n", 200, "number of single-bit injections")
	seed := flag.Int64("seed", 1, "sampling seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel injection workers (results are identical for any value)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the campaign (0 = none); on expiry completed shots are checkpointed")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for completed shots (enables SIGINT-safe interruption)")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of starting over")
	errBudget := flag.Int("error-budget", 0, "abort after this many infrastructure errors (0 = record all and keep going)")
	interference := flag.Bool("interference", false, "run the 2x1/3x1/4x1 ACE-interference study on SDC bits")
	obsFlag := flag.Bool("obs", false, "print an observability summary (phase timings and counters) after the campaign")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the campaign phases to this file")
	debugAddr := flag.String("debug-addr", "", "serve expvar, pprof, and Prometheus /metrics on this address (e.g. :8080 or :0 for a free port); /debug/vars carries live campaign progress with shots/sec and ETA")
	fabricWorkers := flag.String("fabric-workers", "", "comma-separated fabric worker base URLs; distributes the campaign across the fleet (results stay bit-identical to a local run)")
	fabricShard := flag.Int("fabric-shard", 0, "shots per fabric lease (0 = default)")
	fabricTTL := flag.Duration("fabric-lease-ttl", 0, "lease deadline before an unresponsive worker's work is stolen (0 = default)")
	fabricBudget := flag.Int("fabric-error-budget", 0, "abort after this many failed lease dispatches (0 = retry/fall back forever)")
	fabricTimeline := flag.Bool("fabric-timeline", false, "print the per-lease campaign timeline (dispatches, steals, latency percentiles, per-worker breakdown) to stderr after a distributed run")
	flag.Parse()

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "mbavf-inject: -resume requires -checkpoint")
		os.Exit(2)
	}

	obs.SetProcessName("mbavf-inject coordinator " + *workload)
	if *obsFlag || *fabricTimeline {
		obs.Enable()
	}
	if *tracePath != "" {
		obs.StartTrace()
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbavf-inject:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mbavf-inject: debug server on http://%s/debug/vars (Prometheus on /metrics)\n", addr)
	}

	// SIGINT/SIGTERM cancel the campaign context; the pool drains
	// in-flight shots and the final checkpoint is written before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c, err := mbavf.NewInjectionCampaign(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbavf-inject:", err)
		os.Exit(1)
	}
	// finishObs emits the observability artifacts; it runs on every exit
	// path, including interruption before any shot completes — a partial
	// trace is exactly what an operator investigating a slow or stuck run
	// wants.
	finishObs := func() {
		if *obsFlag {
			var b strings.Builder
			for _, t := range obs.SummaryTables(*workload) {
				t.Render(&b)
			}
			fmt.Print(b.String())
		}
		if *fabricTimeline {
			// The timeline goes to stderr: stdout is the classification
			// summary, which distributed-vs-local comparisons diff
			// byte-for-byte.
			tables := fabric.TimelineTables()
			if len(tables) == 0 {
				fmt.Fprintln(os.Stderr, "mbavf-inject: no fabric events recorded (campaign ran without a fleet?)")
			}
			var b strings.Builder
			for _, t := range tables {
				t.Render(&b)
			}
			fmt.Fprint(os.Stderr, b.String())
		}
		if *tracePath != "" {
			if err := obs.WriteTrace(*tracePath); err != nil {
				fmt.Fprintln(os.Stderr, "mbavf-inject: trace:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "mbavf-inject: wrote %d trace events to %s\n", obs.TraceEventCount(), *tracePath)
		}
	}

	var fo *mbavf.FabricOptions
	if peers := splitPeers(*fabricWorkers); len(peers) > 0 {
		fo = &mbavf.FabricOptions{
			Workers:     peers,
			ShardSize:   *fabricShard,
			LeaseTTL:    *fabricTTL,
			ErrorBudget: *fabricBudget,
		}
		fmt.Fprintf(os.Stderr, "mbavf-inject: distributing across %d fabric workers\n", len(peers))
	}

	results, sum, err := c.RunCampaign(ctx, mbavf.CampaignRunConfig{
		Injections:     *n,
		Seed:           *seed,
		Workers:        *workers,
		Timeout:        *timeout,
		ErrorBudget:    *errBudget,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Fabric:         fo,
	})
	if err != nil && len(results) == 0 && sum.Errors == 0 {
		fmt.Fprintln(os.Stderr, "mbavf-inject:", err)
		finishObs()
		os.Exit(1)
	}

	total := float64(sum.Classified())
	pct := func(k int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(k) / total
	}
	fmt.Printf("%s: %d of %d single-bit injections classified\n", *workload, sum.Classified(), *n)
	fmt.Printf("  masked: %5d (%5.1f%%)\n", sum.Masked, pct(sum.Masked))
	fmt.Printf("  sdc:    %5d (%5.1f%%)\n", sum.SDC, pct(sum.SDC))
	fmt.Printf("  due:    %5d (%5.1f%%)\n", sum.DUE, pct(sum.DUE))
	fmt.Printf("  hang:   %5d (%5.1f%%)\n", sum.Hang, pct(sum.Hang))
	fmt.Printf("  crash:  %5d (%5.1f%%)\n", sum.Crash, pct(sum.Crash))
	if sum.Errors > 0 {
		fmt.Printf("  infrastructure errors: %d shots unclassified\n", sum.Errors)
	}

	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "mbavf-inject: interrupted")
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintln(os.Stderr, "mbavf-inject: timeout reached")
		default:
			fmt.Fprintln(os.Stderr, "mbavf-inject:", err)
		}
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "mbavf-inject: progress saved to %s; rerun with -resume to continue\n", *checkpoint)
		}
		finishObs()
		os.Exit(1)
	}

	if *interference {
		rows, err := c.RunInterference(results, []int{2, 3, 4})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbavf-inject:", err)
			finishObs()
			os.Exit(1)
		}
		fmt.Println("\nACE-interference study (multi-bit groups around SDC ACE bits):")
		for _, r := range rows {
			fmt.Printf("  %dx1: %d groups, %d with interference\n", r.ModeSize, r.Groups, r.Interference)
		}
	}
	finishObs()
}
