// Command mbavf-asm assembles, checks, and optionally test-runs a GPU
// kernel written in the library's assembler syntax.
//
// Usage:
//
//	mbavf-asm kernel.s                 # assemble + print stats and disassembly
//	mbavf-asm -run -waves 4 kernel.s   # also execute with scratch buffers
//
// When running, the kernel receives the addresses of eight 64KB scratch
// buffers in s0..s7 (each 64-byte aligned); buffer 0 is dumped after the
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mbavf"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "mbavf-asm:", err)
	os.Exit(1)
}

func main() {
	runIt := flag.Bool("run", false, "execute the kernel on the simulator")
	waves := flag.Int("waves", 1, "wavefronts to dispatch when running")
	dumpWords := flag.Int("dump", 16, "words of buffer 0 to print after a run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mbavf-asm [-run] [-waves N] kernel.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		die(err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	k, err := mbavf.AssembleKernel(name, string(src))
	if err != nil {
		die(err)
	}
	dis := k.Disassemble()
	fmt.Printf("%s: assembled OK (%d instructions)\n\n%s",
		name, strings.Count(dis, "\n")-1, dis)

	if !*runIt {
		return
	}
	c, err := mbavf.NewCustom()
	if err != nil {
		die(err)
	}
	const bufWords = 16 * 1024
	args := make([]uint32, 8)
	args[0] = c.Output(bufWords)
	for i := 1; i < 8; i++ {
		args[i] = c.Scratch(bufWords)
	}
	c.Dispatch(k, *waves, args...)
	run, err := c.Finish()
	if err != nil {
		die(err)
	}
	fmt.Printf("\nran %d wave(s): %d cycles, %d instructions\n",
		*waves, run.Cycles(), run.Instructions())
	out, err := c.ReadWords(args[0], *dumpWords)
	if err != nil {
		die(err)
	}
	fmt.Printf("buffer0[0:%d] = %v\n", *dumpWords, out)
}
