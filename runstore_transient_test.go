package mbavf

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// transientStore records a vecadd artifact, then replaces it with a
// directory: reads fail with EISDIR, which is neither a miss nor typed
// corruption — exactly the transient-failure shape (NFS hiccup, EMFILE,
// permission flap) RunWorkloadStored must not treat as damage.
func transientStore(t *testing.T) (rs *RunStore, path string, pristine []byte) {
	t.Helper()
	dir := t.TempDir()
	rs, err := OpenRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, fromStore, err := RunWorkloadStored(context.Background(), "vecadd", rs); err != nil || fromStore {
		t.Fatalf("recording run: fromStore=%v err=%v", fromStore, err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.mbavf"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("want 1 artifact, got %v (%v)", paths, err)
	}
	path = paths[0]
	pristine, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	return rs, path, pristine
}

// TestStoreTransientFailureRetries: a store whose artifact becomes
// readable again during the backoff is answered from the store — the
// retry, not a wasteful (and artifact-clobbering) re-simulation.
func TestStoreTransientFailureRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("records a workload artifact; skipped in -short")
	}
	rs, path, pristine := transientStore(t)

	defer func(d time.Duration) { storeRetryDelay = d }(storeRetryDelay)
	storeRetryDelay = 500 * time.Millisecond

	// The flap heals while RunWorkloadStored is backing off.
	go func() {
		time.Sleep(100 * time.Millisecond)
		_ = os.Remove(path)
		_ = os.WriteFile(path, pristine, 0o644)
	}()

	r, fromStore, err := RunWorkloadStored(context.Background(), "vecadd", rs)
	if err != nil {
		t.Fatal(err)
	}
	if !fromStore {
		t.Fatal("healed store was not answered by the retried Load")
	}
	if r.Workload() != "vecadd" {
		t.Fatalf("retried load revived workload %q", r.Workload())
	}
}

// TestStoreTransientFailureDoesNotClobber: when the flap persists past
// the retry, the fallback simulation answers the caller but must NOT
// overwrite the artifact — the recording may be perfectly good once the
// filesystem recovers.
func TestStoreTransientFailureDoesNotClobber(t *testing.T) {
	if testing.Short() {
		t.Skip("records a workload artifact; skipped in -short")
	}
	rs, path, pristine := transientStore(t)

	defer func(d time.Duration) { storeRetryDelay = d }(storeRetryDelay)
	storeRetryDelay = time.Millisecond

	r, fromStore, err := RunWorkloadStored(context.Background(), "vecadd", rs)
	if err != nil {
		t.Fatal(err)
	}
	if fromStore {
		t.Fatal("fromStore=true while the artifact was unreadable")
	}
	if r.Workload() != "vecadd" {
		t.Fatalf("fallback simulated workload %q", r.Workload())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !fi.IsDir() {
		t.Fatal("transient fallback overwrote the artifact path")
	}

	// Once the flap heals, the original recording is still there, intact.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, fromStore, err := RunWorkloadStored(context.Background(), "vecadd", rs); err != nil || !fromStore {
		t.Fatalf("post-flap load: fromStore=%v err=%v", fromStore, err)
	}
}

// TestStoreTransientFailureHonorsContext: cancelling the context during
// the retry backoff returns promptly with the context error.
func TestStoreTransientFailureHonorsContext(t *testing.T) {
	if testing.Short() {
		t.Skip("records a workload artifact; skipped in -short")
	}
	rs, _, _ := transientStore(t)

	defer func(d time.Duration) { storeRetryDelay = d }(storeRetryDelay)
	storeRetryDelay = time.Hour

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := RunWorkloadStored(ctx, "vecadd", rs)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled retry returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled retry did not return")
	}
}
