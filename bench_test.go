package mbavf

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the corresponding artifact
// (printing its rows on the first iteration with -v via b.Log), so
//
//	go test -bench=. -benchmem
//
// re-derives the full evaluation. Instrumented simulation runs are
// memoized inside the experiments package, so iteration time measures the
// MB-AVF analysis itself, which is the paper's contribution.
//
// The benchmarks default to a representative workload subset
// (minife, matmul, srad) so a full -bench=. pass completes in minutes;
// run cmd/mbavf-exp for the complete benchmark set.

import (
	"testing"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/experiments"
	"mbavf/internal/interleave"
	"mbavf/internal/obs"
)

var benchOpts = experiments.Options{
	Workloads:  []string{"minife", "matmul", "srad"},
	Injections: 10,
	Seed:       42,
	Windows:    8,
}

func benchExperiment(b *testing.B, name string) {
	e, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log(t.String())
			}
		}
	}
}

// BenchmarkTable1 regenerates Table I (Ibe et al. fault-width
// distribution by technology node).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2 regenerates Figure 2 (temporal vs spatial MBF MTTF of a
// 32MB cache across raw fault rates).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig4 regenerates Figure 4 (2x1 DUE MB-AVF of the L1 under
// parity with logical / way-physical / index-physical x2 interleaving).
// The obs sub-benchmarks measure the observability layer's cost on the
// same pipeline: "obs=off" is the default disabled path (its overhead
// versus an uninstrumented build must stay within noise), "obs=on" pays
// for live counters and phase timing.
func BenchmarkFig4(b *testing.B) {
	b.Run("obs=off", func(b *testing.B) {
		obs.Disable()
		benchExperiment(b, "fig4")
	})
	b.Run("obs=on", func(b *testing.B) {
		obs.Enable()
		defer func() {
			obs.Disable()
			obs.Reset()
		}()
		benchExperiment(b, "fig4")
	})
}

// BenchmarkFig5 regenerates Figures 5a/5b (MiniFE SB- and MB-AVF over
// time, per interleaving style).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figures 6a/6b (DUE MB-AVF vs fault-mode size
// under parity and SEC-DED with x4 way-physical interleaving).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable2 regenerates Table II (the ACE-interference fault
// injection study) at reduced campaign size.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig8 regenerates Figure 8 (SDC vs DUE MB-AVF for 3x1 faults on
// MiniFE, index- vs way-physical interleaving).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (SDC MB-AVF for 5x1..8x1 faults with
// SEC-DED and x2 interleaving).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (true vs false DUE by fault mode).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable3 regenerates Table III (case-study fault rates).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig11 regenerates Figure 11 (the VGPR protection case study).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// --- component micro-benchmarks ---

// BenchmarkSimulateMinife measures a full instrumented simulation run of
// the minife workload (event tracking phase of the AVF methodology).
func BenchmarkSimulateMinife(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunWorkload("minife"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeL1 measures one MB-AVF analysis pass (the analysis
// phase) over the minife L1 for a 2x1 mode.
func BenchmarkAnalyzeL1(b *testing.B) {
	run, err := RunWorkload("minife")
	if err != nil {
		b.Fatal(err)
	}
	il := Interleaving{Style: StyleWayPhysical, Factor: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.L1AVF(Parity, il, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeVGPR measures one MB-AVF analysis pass over the vector
// register file for a 4x1 mode.
func BenchmarkAnalyzeVGPR(b *testing.B) {
	run, err := RunWorkload("minife")
	if err != nil {
		b.Fatal(err)
	}
	il := Interleaving{Style: StyleInterThread, Factor: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.VGPRAVF(Parity, il, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve measures one MB-AVF analysis pass per structure and
// fault mode on both solver paths: the word-packed bit-parallel default
// ("packed") and the per-bit scalar reference ("scalar"). The two are
// proven bit-identical (internal/core solver equivalence harness), so
// the packed/scalar time ratio on a given sub-benchmark is exactly the
// speedup of the bit-parallel solver on that analysis. The l1/way-x2/2x1
// case is the Figure 4 analysis path.
func BenchmarkSolve(b *testing.B) {
	run, err := RunWorkload("minife")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name     string
		st       Structure
		il       Interleaving
		scheme   Scheme
		modeBits int
	}{
		{"l1/way-x2/2x1", L1, Interleaving{Style: StyleWayPhysical, Factor: 2}, Parity, 2},
		{"l1/logical-x2/2x1", L1, Interleaving{Style: StyleLogical, Factor: 2}, Parity, 2},
		{"l1/way-x4/4x1", L1, Interleaving{Style: StyleWayPhysical, Factor: 4}, SECDED, 4},
		{"l2/way-x2/2x1", L2, Interleaving{Style: StyleWayPhysical, Factor: 2}, Parity, 2},
		{"vgpr/tx-x4/4x1", VGPR, Interleaving{Style: StyleInterThread, Factor: 4}, Parity, 4},
	}
	for _, c := range cases {
		for _, solver := range []string{"packed", "scalar"} {
			b.Run(c.name+"/"+solver, func(b *testing.B) {
				core.SetScalarSolve(solver == "scalar")
				defer core.SetScalarSolve(false)
				for i := 0; i < b.N; i++ {
					if _, err := run.AVF(c.st, c.scheme, c.il, c.modeBits); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAnalyzeFromSimulation is the cold-process baseline of the
// run-artifact store pair: acquiring an analyzable minife run by fresh
// simulation, then answering one L1 query. Compare with
// BenchmarkAnalyzeFromStore, which answers the identical query from a
// warm store; the ratio is the store's end-to-end speedup for a
// process that runs exactly one analysis (the analysis itself costs
// the same on both sides, so this pair understates the saving of every
// further query).
func BenchmarkAnalyzeFromSimulation(b *testing.B) {
	il := Interleaving{Style: StyleWayPhysical, Factor: 2}
	for i := 0; i < b.N; i++ {
		run, err := RunWorkload("minife")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run.L1AVF(Parity, il, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeFromStore measures the same cold-process analysis
// served from a warm run-artifact store: load the recorded artifact,
// answer the same L1 query (which decodes the sections it touches —
// lazy loading defers payload decoding to first use). The record
// happens once outside the timer — that is the store's whole point
// ("record once, analyze forever").
func BenchmarkAnalyzeFromStore(b *testing.B) {
	rs := recordedMinife(b)
	il := Interleaving{Style: StyleWayPhysical, Factor: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := rs.Load("minife")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := loaded.L1AVF(Parity, il, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func recordedMinife(b *testing.B) *RunStore {
	b.Helper()
	rs, err := OpenRunStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	run, err := RunWorkload("minife")
	if err != nil {
		b.Fatal(err)
	}
	if err := rs.Save("minife", run); err != nil {
		b.Fatal(err)
	}
	return rs
}

// BenchmarkRunAcquisition isolates the phase the store replaces:
// obtaining an analyzable run. "simulate" executes the workload with
// full instrumentation; "store" reloads the recorded artifact and
// Preloads the L1 sections (graph + L1 timeline) so the store arm pays
// its decoding here, not in the first query; "store-full" Preloads
// every structure, the worst case for the store. The simulate/store
// ratio is the record-once speedup the motivation promises — reload in
// milliseconds instead of re-simulating.
func BenchmarkRunAcquisition(b *testing.B) {
	b.Run("simulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunWorkload("minife"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("store", func(b *testing.B) {
		rs := recordedMinife(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run, err := rs.Load("minife")
			if err != nil {
				b.Fatal(err)
			}
			if err := run.Preload(L1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("store-full", func(b *testing.B) {
		rs := recordedMinife(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run, err := rs.Load("minife")
			if err != nil {
				b.Fatal(err)
			}
			if err := run.Preload(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHammingDecode measures the real SEC-DED codec.
func BenchmarkHammingDecode(b *testing.B) {
	h := ecc.NewHamming(32)
	cw := h.Encode([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	buf := make([]byte, len(cw))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, cw)
		h.FlipCodewordBit(buf, i%h.CodewordBits())
		if _, r := h.Decode(buf); r != ecc.ReactCorrected {
			b.Fatal("unexpected reaction")
		}
	}
}

// BenchmarkGroupEnumeration measures fault-group enumeration over an
// L1-sized array.
func BenchmarkGroupEnumeration(b *testing.B) {
	lay, err := interleave.WayPhysical(64, 4, 512, 2)
	if err != nil {
		b.Fatal(err)
	}
	mode := bitgeom.Mx1(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		lay.Geom.ForEachGroup(mode, func(_ int, bits []bitgeom.BitPos) {
			n += len(bits)
		})
		if n == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkWorkloads measures the full instrumented simulation of every
// bundled workload (the event-tracking phase cost per benchmark).
func BenchmarkWorkloads(b *testing.B) {
	for _, name := range Workloads() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunWorkload(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
