package mbavf

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"mbavf/internal/store"
	"mbavf/internal/store/disk"
	"mbavf/internal/store/httpstore"
	"mbavf/internal/store/mem"
)

// equivBackends builds one of each backend kind: the disk store, the
// in-memory test double in both eager and ranged flavors, and an HTTP
// client over a real (httptest) artifact server. Every run-store
// behavior must be identical across all of them.
func equivBackends(t *testing.T) map[string]store.Backend {
	t.Helper()
	db, err := disk.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	httpstore.NewServer(mem.New()).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return map[string]store.Backend{
		"disk":       db,
		"mem":        mem.New(),
		"mem-ranged": mem.NewRanged(),
		"http":       httpstore.New(srv.URL),
	}
}

// TestBackendEquivalence proves the pluggable-backend contract at the
// public API: a run recorded through NewRunStore over ANY backend —
// local directory, in-memory map, eager or ranged, or the HTTP artifact
// protocol over a real server — analyzes bit-identically (==) to the
// directly simulated run. The ranged backends additionally exercise the
// lazy per-section fetch path end to end.
func TestBackendEquivalence(t *testing.T) {
	direct, err := RunWorkload("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range equivBackends(t) {
		t.Run(name, func(t *testing.T) {
			rs := NewRunStore(b)
			if err := rs.Save("vecadd", direct); err != nil {
				t.Fatalf("Save over %s: %v", name, err)
			}
			loaded, err := rs.Load("vecadd")
			if err != nil {
				t.Fatalf("Load over %s: %v", name, err)
			}
			if loaded.Workload() != direct.Workload() || loaded.Cycles() != direct.Cycles() ||
				loaded.Instructions() != direct.Instructions() {
				t.Fatalf("metadata differs over %s", name)
			}
			for _, st := range Structures() {
				il := Interleaving{Style: st.Styles()[0], Factor: 2}
				for _, scheme := range []Scheme{Parity, SECDED} {
					want, werr := direct.AVF(st, scheme, il, 1)
					got, gerr := loaded.AVF(st, scheme, il, 1)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("%s %s: error mismatch: %v vs %v", st, scheme, werr, gerr)
					}
					if want != got {
						t.Errorf("%s %s: AVF differs over %s:\n direct %+v\n stored %+v",
							st, scheme, name, want, got)
					}
				}
			}
		})
	}
}

// TestRunWorkloadStoredForAcrossBackends covers the preloading stored-run
// entry point over every backend: the first call simulates and records,
// the second answers from the store with the requested structure already
// decoded (which, over a ranged backend, is what forces the remote
// section fetch while the fallback machinery is still in scope).
func TestRunWorkloadStoredForAcrossBackends(t *testing.T) {
	ctx := context.Background()
	for name, b := range equivBackends(t) {
		t.Run(name, func(t *testing.T) {
			rs := NewRunStore(b)
			r1, fromStore, err := RunWorkloadStoredFor(ctx, "vecadd", rs, L1)
			if err != nil {
				t.Fatal(err)
			}
			if fromStore {
				t.Error("first call reported a store hit")
			}
			r2, fromStore, err := RunWorkloadStoredFor(ctx, "vecadd", rs, L1)
			if err != nil {
				t.Fatal(err)
			}
			if !fromStore {
				t.Error("second call simulated despite a recorded artifact")
			}
			il := Interleaving{Style: StyleLogical, Factor: 2}
			want, err := r1.AVF(L1, Parity, il, 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r2.AVF(L1, Parity, il, 1)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Errorf("stored AVF differs over %s: %+v vs %+v", name, want, got)
			}
		})
	}
}
