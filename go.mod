module mbavf

go 1.22
