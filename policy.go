package mbavf

import (
	"errors"
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/interval"
	"mbavf/internal/policy"
)

// Policies lists the built-in protection policies in presentation order:
// the paper's plain parity/SEC-DED assumptions (report-on-detect, no
// temporal model), their report-on-use variants, and SEC-DED with
// temporal accumulation without and with a periodic scrubber.
func Policies() []string { return policy.Names() }

// DefaultScrubInterval is the scrub period, in cycles, the scrubbing
// policies use when the caller does not choose one.
const DefaultScrubInterval = policy.DefaultScrubInterval

// PolicyOutcome is the vulnerability of one (structure, policy,
// interleaving, fault mode) combination, alongside the plain-scheme
// baseline it deviates from.
type PolicyOutcome struct {
	// Policy is the evaluated policy's name.
	Policy string
	// AVF is the policy-adjusted vulnerability. For a degenerate policy
	// (report-on-detect, no temporal accumulation) it is bit-identical to
	// Run.AVF under the same scheme.
	AVF AVF
	// Baseline is the plain scheme's vulnerability (report-on-detect, no
	// temporal model) — the paper's Table 2 accounting for this scheme.
	Baseline AVF
	// DeltaDUE / DeltaSDC are AVF minus Baseline: what the policy's
	// reporting discipline and temporal exposure buy (negative) or cost
	// (positive) relative to the paper's assumptions.
	DeltaDUE float64
	DeltaSDC float64
	// AccumP is the temporal multi-event occupancy probability mixed into
	// AVF (0 when the policy has no temporal model).
	AccumP float64
	// Escalated reports that an escalated-by-one-flip solve contributed
	// to AVF.
	Escalated bool
}

// validateScrub checks the wire/flag form of a scrub interval: policies
// are always evaluated under an explicit positive period, so zero and
// negative values are caller errors rather than silent defaults.
func validateScrub(scrubInterval int64) error {
	if scrubInterval <= 0 {
		return fmt.Errorf("%w: scrub interval must be positive cycles (got %d)", ErrBadOption, scrubInterval)
	}
	return nil
}

// PolicyAVF evaluates a named protection policy over an Mx1 fault mode
// in the given structure: the policy's scheme is solved through the
// spatial fault-group sweep once, and the policy pass reclassifies the
// solved outcome under the policy's reporting discipline and
// scrub/temporal-accumulation model (at most one extra escalated-scheme
// solve, and no re-simulation). scrubInterval, in cycles, parameterizes
// the scrubbing policies and must be positive; unknown policy names and
// non-positive intervals return ErrBadOption.
func (r *Run) PolicyAVF(st Structure, policyName string, il Interleaving, modeBits int, scrubInterval int64) (PolicyOutcome, error) {
	if err := validateQuery(il, modeBits); err != nil {
		return PolicyOutcome{}, err
	}
	if err := validateScrub(scrubInterval); err != nil {
		return PolicyOutcome{}, err
	}
	pol, err := policy.Named(policyName, policy.Spec{ScrubInterval: interval.Cycle(scrubInterval)})
	if err != nil {
		return PolicyOutcome{}, badPolicyErr(err)
	}
	a, err := r.analyzerFor(st, il)
	if err != nil {
		return PolicyOutcome{}, err
	}
	mode := bitgeom.Mx1(modeBits)
	base, err := a.Analyze(pol.Scheme, mode)
	if err != nil {
		return PolicyOutcome{}, err
	}
	env := policy.Env{TotalCycles: a.TotalCycles, DomainBits: a.Layout.DomainBits}
	out, err := pol.Evaluate(env, base, func(s ecc.Scheme) (*core.Result, error) {
		return a.Analyze(s, mode)
	})
	if err != nil {
		return PolicyOutcome{}, badPolicyErr(err)
	}
	baseline := fromResult(base)
	po := PolicyOutcome{
		Policy: policyName,
		AVF: AVF{
			DUE:       out.DUE,
			SDC:       out.SDC,
			TrueDUE:   out.TrueDUE,
			FalseDUE:  out.FalseDUE,
			SBAVF:     out.SBAVF,
			SBAVFLive: out.SBAVFLive,
			Groups:    base.Groups,
			Cycles:    base.TotalCycles,
		},
		Baseline:  baseline,
		DeltaDUE:  out.DUE - baseline.DUE,
		DeltaSDC:  out.SDC - baseline.SDC,
		AccumP:    out.AccumP,
		Escalated: out.Escalated,
	}
	return po, nil
}

// badPolicyErr maps the internal policy package's typed error onto the
// public ErrBadOption contract, so the serving layer's errors.Is-based
// status mapping treats a bad policy like any other bad query option.
func badPolicyErr(err error) error {
	if errors.Is(err, policy.ErrBadPolicy) {
		return fmt.Errorf("%w: %v", ErrBadOption, err)
	}
	return err
}
