package mbavf

import (
	"fmt"

	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// Kernel is a compiled GPU kernel usable in custom workloads.
type Kernel struct {
	prog *gpu.Program
}

// Name returns the kernel's name.
func (k Kernel) Name() string { return k.prog.Name }

// Disassemble renders the kernel back to assembler text.
func (k Kernel) Disassemble() string { return gpu.Disassemble(k.prog) }

// AssembleKernel compiles assembler text into a kernel. The syntax is one
// instruction per line:
//
//	v_mov   v0, tid        ; v/s registers, tid/lane/wave specials
//	v_shl   v0, v0, 2      ; integer immediates (decimal, hex)
//	v_add   v1, v0, s0     ; dispatch args arrive in s0, s1, ...
//	v_load  v2, [v1+0]     ; [reg+offset] addressing
//	v_fmul  v2, v2, 2.5f   ; float immediates with an f suffix
//	v_cmp_lt v2, 100       ; compares write the VCC lane mask
//	s_if_vcc               ; structured divergence on VCC
//	s_endif
//	s_brnz  s1, loop       ; scalar-condition branches to labels
//	s_endpgm
func AssembleKernel(name, source string) (Kernel, error) {
	p, err := gpu.Assemble(name, source)
	if err != nil {
		return Kernel{}, err
	}
	return Kernel{prog: p}, nil
}

// Custom builds a user-defined workload: allocate buffers, dispatch
// kernels, then Finish to obtain a Run for AVF analysis. Methods record
// the first error and subsequent calls become no-ops, so a recipe can be
// written without per-call error checks and validated at Finish.
type Custom struct {
	session *sim.Session
	err     error
	done    bool
}

// NewCustom starts a custom workload on the default instrumented APU.
func NewCustom() (*Custom, error) {
	s, err := sim.NewSession(sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &Custom{session: s}, nil
}

// Input allocates a buffer initialized with the given 32-bit words and
// returns its address.
func (c *Custom) Input(words []uint32) uint32 {
	if c.err != nil || c.bad("Input") {
		return 0
	}
	addr, err := c.session.InputWords(words)
	c.err = err
	return addr
}

// InputBytes allocates a byte buffer input.
func (c *Custom) InputBytes(data []byte) uint32 {
	if c.err != nil || c.bad("InputBytes") {
		return 0
	}
	addr, err := c.session.InputBytes(data)
	c.err = err
	return addr
}

// Output allocates an n-word buffer declared as final program output
// (what the program-level SDC analysis treats as architecturally
// visible).
func (c *Custom) Output(nWords int) uint32 {
	if c.err != nil || c.bad("Output") {
		return 0
	}
	return c.session.OutputWords(nWords)
}

// Scratch allocates an n-word intermediate buffer (not program output).
func (c *Custom) Scratch(nWords int) uint32 {
	if c.err != nil || c.bad("Scratch") {
		return 0
	}
	return c.session.ScratchWords(nWords)
}

// MarkOutput declares an existing buffer (e.g. an input transformed in
// place) as program output.
func (c *Custom) MarkOutput(addr uint32, nWords int) {
	if c.err != nil || c.bad("MarkOutput") {
		return
	}
	c.session.DeclareOutput(addr, 4*nWords)
}

// Dispatch runs waves wavefronts of the kernel; args land in scalar
// registers s0, s1, ... of every wavefront.
func (c *Custom) Dispatch(k Kernel, waves int, args ...uint32) {
	if c.err != nil || c.bad("Dispatch") {
		return
	}
	if k.prog == nil {
		c.err = fmt.Errorf("mbavf: Dispatch with zero Kernel")
		return
	}
	c.err = c.session.Run(gpu.Dispatch{Prog: k.prog, Waves: waves, Args: args})
}

func (c *Custom) bad(op string) bool {
	if c.done {
		c.err = fmt.Errorf("mbavf: %s after Finish", op)
		return true
	}
	return false
}

// Finish finalizes the workload (flushing caches, solving liveness) and
// returns the Run for AVF analysis, plus any error accumulated by the
// recipe.
func (c *Custom) Finish() (*Run, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.done {
		return nil, fmt.Errorf("mbavf: Finish called twice")
	}
	c.done = true
	if err := c.session.Finalize(); err != nil {
		return nil, err
	}
	return newRunFromSession(c.session), nil
}

// ReadWords reads back n 32-bit words from the simulated memory, e.g. to
// inspect results after Finish.
func (c *Custom) ReadWords(addr uint32, n int) ([]uint32, error) {
	return c.session.Mem.Words(addr, n)
}
