package mbavf

import (
	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
)

// ACELocality quantifies the tendency of the bits of a fault group to be
// ACE at the same time (the paper's ACE-locality property, Section VI-B):
// the fraction of any-bit-ACE group time during which every bit is ACE.
// Structures with high locality have MB-AVFs near the 1x SB-AVF floor.
type ACELocality struct {
	// Coefficient is P(all bits ACE | any bit ACE) in [0, 1].
	Coefficient float64
	// Groups is the number of fault groups measured.
	Groups int
}

func localityOf(a *core.Analyzer, modeBits int) (ACELocality, error) {
	loc, err := a.ACELocality(bitgeom.Mx1(modeBits))
	if err != nil {
		return ACELocality{}, err
	}
	return ACELocality{Coefficient: loc.Coefficient(), Groups: loc.Groups}, nil
}

// L1ACELocality measures ACE locality of Mx1 fault groups in compute unit
// 0's L1 data array under the given interleaving layout.
func (r *Run) L1ACELocality(il Interleaving, modeBits int) (ACELocality, error) {
	a, err := r.analyzerFor(L1, il)
	if err != nil {
		return ACELocality{}, err
	}
	return localityOf(a, modeBits)
}

// VGPRACELocality measures ACE locality of Mx1 fault groups in the vector
// register file under the given interleaving layout.
func (r *Run) VGPRACELocality(il Interleaving, modeBits int) (ACELocality, error) {
	a, err := r.analyzerFor(VGPR, il)
	if err != nil {
		return ACELocality{}, err
	}
	return localityOf(a, modeBits)
}
