package mbavf

import (
	"fmt"
	"io"

	"mbavf/internal/sim"
	"mbavf/internal/store"
)

// Save serializes the run's measurement artifact in the compact binary
// store format: varint/delta-encoded lifetime segments, the solved
// liveness graph, cycle counts, and the machine-config fingerprint, all
// in CRC-checked sections. A saved run reloads with LoadRun and supports
// every analysis method without re-simulation, bit-identically —
// "measure once, analyze many". For a managed on-disk collection keyed
// by (workload, machine config), use RunStore instead of raw files.
func (r *Run) Save(w io.Writer) error {
	m, err := r.measurements()
	if err != nil {
		return err
	}
	if !m.Instrumented() {
		return fmt.Errorf("mbavf: run is not fully instrumented; nothing to save")
	}
	return store.Encode(w, m)
}

// measurements returns the run's complete measurement set. For a run
// backed by a store artifact it forces any not-yet-decoded sections
// (reusing the ones queries already decoded); for a simulated run it is
// free.
func (r *Run) measurements() (*sim.Measurements, error) {
	if r.art != nil {
		return r.art.Measurements()
	}
	return r.m, nil
}

// LoadRun revives a Run saved with Save. Damaged or truncated input is
// rejected with a typed error (the format CRC-checks every section);
// analysis never runs over partially decoded artifacts.
func LoadRun(rd io.Reader) (*Run, error) {
	m, err := store.DecodeReader(rd)
	if err != nil {
		return nil, fmt.Errorf("mbavf: decoding run artifact: %w", err)
	}
	return &Run{m: m}, nil
}
