package mbavf

import (
	"encoding/gob"
	"fmt"
	"io"

	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
)

// runArtifact is the serialized form of a Run: the lifetime segments of
// every instrumented structure plus the solved liveness state — the
// "event-tracking phase" output, which is the expensive part. Reloading
// it skips simulation entirely; every AVF analysis works unchanged.
type runArtifact struct {
	FormatVersion int
	Cycles        uint64
	Instructions  uint64
	VGPRThreads   int
	VGPRRegs      int
	L1Sets        int
	L1Ways        int
	L2Sets        int
	L2Ways        int
	LineBytes     int
	L1            lifetime.Snapshot
	L2            lifetime.Snapshot
	VGPR          lifetime.Snapshot
	Graph         dataflow.Snapshot
}

// artifactFormat identifies the on-disk layout; bump when the artifact
// structure changes.
const artifactFormat = 1

// Save serializes the run's measurement artifacts (gob-encoded). A saved
// run reloads with LoadRun and supports every analysis method without
// re-simulation — "measure once, analyze many".
func (r *Run) Save(w io.Writer) error {
	if r.l1Tracker == nil || r.l2Tracker == nil || r.vgprTracker == nil || r.graph == nil {
		return fmt.Errorf("mbavf: run is not fully instrumented; nothing to save")
	}
	art := runArtifact{
		FormatVersion: artifactFormat,
		Cycles:        r.cycles,
		Instructions:  r.instructions,
		VGPRThreads:   r.vgprThreads,
		VGPRRegs:      r.vgprRegs,
		L1Sets:        r.l1Sets,
		L1Ways:        r.l1Ways,
		L2Sets:        r.l2Sets,
		L2Ways:        r.l2Ways,
		LineBytes:     r.lineBytes,
		L1:            r.l1Tracker.Snapshot(),
		L2:            r.l2Tracker.Snapshot(),
		VGPR:          r.vgprTracker.Snapshot(),
		Graph:         r.graph.Snapshot(),
	}
	return gob.NewEncoder(w).Encode(&art)
}

// LoadRun revives a Run saved with Save.
func LoadRun(rd io.Reader) (*Run, error) {
	var art runArtifact
	if err := gob.NewDecoder(rd).Decode(&art); err != nil {
		return nil, fmt.Errorf("mbavf: decoding run artifact: %w", err)
	}
	if art.FormatVersion != artifactFormat {
		return nil, fmt.Errorf("mbavf: artifact format %d, this build reads %d", art.FormatVersion, artifactFormat)
	}
	l1, err := lifetime.FromSnapshot(art.L1)
	if err != nil {
		return nil, err
	}
	l2, err := lifetime.FromSnapshot(art.L2)
	if err != nil {
		return nil, err
	}
	vgpr, err := lifetime.FromSnapshot(art.VGPR)
	if err != nil {
		return nil, err
	}
	g, err := dataflow.Restore(art.Graph)
	if err != nil {
		return nil, err
	}
	if art.Cycles == 0 {
		return nil, fmt.Errorf("mbavf: artifact has zero cycles")
	}
	return &Run{
		cycles:       art.Cycles,
		instructions: art.Instructions,
		vgprThreads:  art.VGPRThreads,
		vgprRegs:     art.VGPRRegs,
		l1Sets:       art.L1Sets,
		l1Ways:       art.L1Ways,
		l2Sets:       art.L2Sets,
		l2Ways:       art.L2Ways,
		lineBytes:    art.LineBytes,
		l1Tracker:    l1,
		l2Tracker:    l2,
		vgprTracker:  vgpr,
		graph:        g,
	}, nil
}
