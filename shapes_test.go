package mbavf

// TestPaperShapes is the paper-shape regression suite: every qualitative
// claim listed under "Expected shape" in DESIGN.md §4, asserted on a
// reduced workload set through the public API. It is a tier-2 test —
// skipped in -short (the -race CI leg) because each workload needs a
// full instrumented simulation — and exists so a refactor of the engine,
// the interleaver, or the ECC reaction model cannot silently bend the
// physics the paper predicts.

import (
	"fmt"
	"sync"
	"testing"

	"mbavf/internal/core"
)

// shapeWorkloads is the reduced benchmark set: one FEM solver, one dense
// kernel, one stencil — enough access-pattern diversity to exercise every
// invariant without simulating the full suite.
var shapeWorkloads = []string{"minife", "matmul", "srad"}

var (
	shapeOnce sync.Once
	shapeRuns map[string]*Run
	shapeErr  error
)

// shapeRun returns the cached instrumented run of one shape workload.
func shapeRun(t *testing.T, name string) *Run {
	t.Helper()
	shapeOnce.Do(func() {
		shapeRuns = make(map[string]*Run, len(shapeWorkloads))
		for _, n := range shapeWorkloads {
			r, err := RunWorkload(n)
			if err != nil {
				shapeErr = fmt.Errorf("%s: %w", n, err)
				return
			}
			shapeRuns[n] = r
		}
	})
	if shapeErr != nil {
		t.Fatal(shapeErr)
	}
	return shapeRuns[name]
}

func l1avf(t *testing.T, r *Run, scheme Scheme, style Style, factor, modeBits int) AVF {
	t.Helper()
	avf, err := r.L1AVF(scheme, Interleaving{Style: style, Factor: factor}, modeBits)
	if err != nil {
		t.Fatal(err)
	}
	return avf
}

func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape suite simulates full workloads; skipped in -short (the -race CI leg)")
	}

	// Every shape must hold on both solver paths: the packed word-parallel
	// default and the scalar per-bit reference it is proven bit-identical
	// to. The workload runs are cached (shapeRun), so the second pass
	// costs only re-analysis.
	for _, solver := range []string{"packed", "scalar"} {
		t.Run(solver, func(t *testing.T) {
			core.SetScalarSolve(solver == "scalar")
			defer core.SetScalarSolve(false)
			paperShapes(t)
		})
	}
}

func paperShapes(t *testing.T) {
	// MB-AVF ∈ [1x, Mx] SB-AVF: an Mx1 fault group is ACE when any of its
	// M bits is ACE, so with full detection (interleave degree M under
	// parity leaves one bit per domain) the group-level AVF is bounded by
	// the single-bit AVF on one side and M times it on the other.
	t.Run("mbavf-within-sb-bounds", func(t *testing.T) {
		for _, name := range shapeWorkloads {
			r := shapeRun(t, name)
			for _, m := range []int{2, 4} {
				for _, style := range []Style{StyleLogical, StyleWayPhysical} {
					avf := l1avf(t, r, Parity, style, m, m)
					if avf.SBAVF <= 0 {
						t.Fatalf("%s: SB-AVF = %v, want > 0", name, avf.SBAVF)
					}
					// The upper bound carries a hair of slack: edge rows of
					// the physical geometry yield slightly fewer than
					// Bits/M fault groups, so the two AVFs' denominators
					// differ by a sub-0.1% factor.
					ratio := avf.DUE / avf.SBAVF
					if ratio < 1-1e-9 || ratio > float64(m)*1.001 {
						t.Errorf("%s %s %dx1: MB-AVF/SB-AVF = %v outside [1, %d]",
							name, style, m, ratio, m)
					}
				}
			}
		}
	})

	// Logical interleaving spreads each fault group across the bits of one
	// logical word, maximizing ACE locality — it must yield the lowest
	// MB-AVF of the three cache layouts (Figure 4).
	t.Run("logical-interleaving-lowest", func(t *testing.T) {
		for _, name := range shapeWorkloads {
			r := shapeRun(t, name)
			logical := l1avf(t, r, Parity, StyleLogical, 2, 2).DUE
			way := l1avf(t, r, Parity, StyleWayPhysical, 2, 2).DUE
			idx := l1avf(t, r, Parity, StyleIndexPhysical, 2, 2).DUE
			if logical > way+1e-9 || logical > idx+1e-9 {
				t.Errorf("%s: logical %v should be lowest (way %v, index %v)",
					name, logical, way, idx)
			}
		}
	})

	// A larger fault mode covers a superset of bits per group, so the
	// group-ACE union — and with it the MB-AVF — can only grow with mode
	// size (Figure 6's rising curves).
	t.Run("monotone-in-mode-size", func(t *testing.T) {
		for _, name := range shapeWorkloads {
			r := shapeRun(t, name)
			prev := -1.0
			for _, m := range []int{2, 3, 4} {
				due := l1avf(t, r, Parity, StyleWayPhysical, 4, m).DUE
				if due < prev-1e-9 {
					t.Errorf("%s: DUE MB-AVF fell from %v to %v at %dx1", name, prev, due, m)
				}
				prev = due
			}
		}
	})

	// Under SEC-DED with x2 interleaving, 6x1 is the first mode whose
	// regions (3 bits) all defeat detection; growing to 8x1 adds bits to
	// already-undetected groups, so the SDC MB-AVF plateaus (Figure 9).
	t.Run("sdc-plateau-6x1-to-8x1", func(t *testing.T) {
		for _, name := range shapeWorkloads {
			r := shapeRun(t, name)
			sdc6 := l1avf(t, r, SECDED, StyleWayPhysical, 2, 6).SDC
			sdc8 := l1avf(t, r, SECDED, StyleWayPhysical, 2, 8).SDC
			if sdc6 <= 0 {
				t.Fatalf("%s: 6x1 SEC-DED x2 SDC = %v, want > 0", name, sdc6)
			}
			if ratio := sdc8 / sdc6; ratio < 0.75 || ratio > 1.5 {
				t.Errorf("%s: SDC should plateau 6x1 (%v) -> 8x1 (%v), ratio %v",
					name, sdc6, sdc8, ratio)
			}
		}
	})

	// Section VI-C equivalence at interleave degree 1: SEC-DED absorbs one
	// bit of the fault (correction), so Mx1 under SEC-DED reacts like
	// (M-1)x1 under parity. Detected case: 2x1 SEC-DED ≈ 1x1 parity.
	// Undetected case: 3x1 SEC-DED and 2x1 parity both defeat detection,
	// so both DUE MB-AVFs must vanish exactly.
	t.Run("secded-m-equals-parity-m-minus-1", func(t *testing.T) {
		for _, name := range shapeWorkloads {
			r := shapeRun(t, name)
			s2 := l1avf(t, r, SECDED, StyleWayPhysical, 1, 2).DUE
			p1 := l1avf(t, r, Parity, StyleWayPhysical, 1, 1).DUE
			if p1 <= 0 {
				t.Fatalf("%s: 1x1 parity DUE = %v, want > 0", name, p1)
			}
			if ratio := s2 / p1; ratio < 0.9 || ratio > 1.1 {
				t.Errorf("%s: 2x1 SEC-DED (%v) should match 1x1 parity (%v), ratio %v",
					name, s2, p1, ratio)
			}
			s3 := l1avf(t, r, SECDED, StyleWayPhysical, 1, 3).DUE
			p2 := l1avf(t, r, Parity, StyleWayPhysical, 1, 2).DUE
			if s3 != 0 || p2 != 0 {
				t.Errorf("%s: undetected modes must have zero DUE: 3x1 SEC-DED = %v, 2x1 parity = %v",
					name, s3, p2)
			}
		}
	})
}
